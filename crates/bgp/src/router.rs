//! A BGP-speaking router for one AS.
//!
//! [`Router`] is a *pure* state machine: it never touches the event queue.
//! Every entry point (an incoming update, a timer expiry, a local
//! origination) returns a [`RouterOutput`] describing what must happen
//! next — messages to put on the wire, timers to arm, and the Loc-RIB
//! change (if any) for vantage-point taps. The [`crate::network::Network`]
//! driver translates those into scheduled events. Keeping the router pure
//! makes the RFD/MRAI interactions unit-testable without a simulator.
//!
//! Processing pipeline for an incoming update (mirroring RFC 4271 + 2439):
//!
//! 1. receiver-side loop detection (a path containing the local ASN is
//!    treated as unfeasible, i.e. an implicit withdrawal);
//! 2. Adj-RIB-In update + flap classification (initial / duplicate /
//!    attribute change / re-advertisement / withdrawal);
//! 3. RFD penalty accounting on the (prefix, session), possibly
//!    suppressing or releasing the route;
//! 4. decision process over all usable candidates;
//! 5. export diffing against the per-neighbor Adj-RIB-Out under the
//!    Gao–Rexford filter, with MRAI gating on announcements.

use std::collections::BTreeMap;

use netsim::SimTime;

use crate::decision::{select_best, Candidate};
use crate::message::{AggregatorStamp, AsId, AsPath, BgpAction, BgpUpdate};
use crate::mrai::{MraiGate, MraiVerdict};
use crate::policy::{ExportPolicy, Relationship, SessionPolicy};
use crate::prefix::Prefix;
use crate::rfd::{FlapKind, RfdTransition};
use crate::rib::{AdjRibIn, Route};

/// What a router selected for a prefix.
#[derive(Clone, Debug, PartialEq)]
pub enum Selection {
    /// The prefix is locally originated.
    Local {
        /// The stamp the origination carries.
        aggregator: Option<AggregatorStamp>,
    },
    /// Best route learned from a neighbor.
    Learned {
        /// The neighbor it was learned from.
        neighbor: AsId,
        /// The route as received.
        route: Route,
    },
}

impl Selection {
    /// The route as this router would describe it to an observer peering
    /// with it (own ASN prepended) — the view a route collector records.
    pub fn exported_view(&self, own: AsId) -> Route {
        match self {
            Selection::Local { aggregator } => Route {
                path: AsPath::from_slice(&[own]),
                aggregator: *aggregator,
            },
            Selection::Learned { route, .. } => Route {
                path: route.path.prepend(own, 1),
                aggregator: route.aggregator,
            },
        }
    }
}

/// A Loc-RIB change, reported so vantage-point taps can record it.
#[derive(Clone, Debug, PartialEq)]
pub struct LocRibChange {
    /// The affected prefix.
    pub prefix: Prefix,
    /// The new best route in exported view (`None` = prefix unreachable).
    pub route: Option<Route>,
}

/// Everything a router wants done after processing one input.
#[derive(Debug, Default)]
pub struct RouterOutput {
    /// Updates to deliver to neighbors (after link delay).
    pub sends: Vec<(AsId, BgpUpdate)>,
    /// MRAI expiry timers to arm: (peer, prefix, fire-at).
    pub mrai_timers: Vec<(AsId, Prefix, SimTime)>,
    /// RFD reuse timers to arm: (peer, prefix, fire-at).
    pub rfd_timers: Vec<(AsId, Prefix, SimTime)>,
    /// The Loc-RIB change, if the best route moved.
    pub loc_rib_change: Option<LocRibChange>,
    /// Announcements the MRAI gate deferred while processing this input.
    pub mrai_deferrals: u32,
    /// True if this input drove an RFD state into suppression.
    pub rfd_suppressed: bool,
    /// True if this input released a suppressed RFD state.
    pub rfd_released: bool,
}

impl RouterOutput {
    fn merge(&mut self, mut other: RouterOutput) {
        self.sends.append(&mut other.sends);
        self.mrai_timers.append(&mut other.mrai_timers);
        self.rfd_timers.append(&mut other.rfd_timers);
        if other.loc_rib_change.is_some() {
            self.loc_rib_change = other.loc_rib_change;
        }
        self.mrai_deferrals += other.mrai_deferrals;
        self.rfd_suppressed |= other.rfd_suppressed;
        self.rfd_released |= other.rfd_released;
    }
}

#[derive(Debug)]
struct Neighbor {
    policy: SessionPolicy,
    adj_in: AdjRibIn,
    adj_out: BTreeMap<Prefix, Route>,
    mrai: MraiGate,
}

/// One AS's router.
#[derive(Debug)]
pub struct Router {
    asn: AsId,
    neighbors: BTreeMap<AsId, Neighbor>,
    originated: BTreeMap<Prefix, Option<AggregatorStamp>>,
    loc_rib: BTreeMap<Prefix, Selection>,
}

impl Router {
    /// A router for the given AS with no sessions.
    pub fn new(asn: AsId) -> Self {
        Router {
            asn,
            neighbors: BTreeMap::new(),
            originated: BTreeMap::new(),
            loc_rib: BTreeMap::new(),
        }
    }

    /// This router's AS number.
    pub fn asn(&self) -> AsId {
        self.asn
    }

    /// Add (or reconfigure) a session to `peer`.
    pub fn add_session(&mut self, peer: AsId, policy: SessionPolicy) {
        assert_ne!(peer, self.asn, "cannot peer with self");
        let mrai = MraiGate::new(policy.mrai);
        self.neighbors.insert(
            peer,
            Neighbor {
                policy,
                adj_in: AdjRibIn::new(),
                adj_out: BTreeMap::new(),
                mrai,
            },
        );
    }

    /// The session policy towards `peer`, if a session exists.
    pub fn session_policy(&self, peer: AsId) -> Option<&SessionPolicy> {
        self.neighbors.get(&peer).map(|n| &n.policy)
    }

    /// All neighbor ASNs (deterministic order).
    pub fn neighbor_ids(&self) -> Vec<AsId> {
        self.neighbors.keys().copied().collect()
    }

    /// The current best selection for `prefix`, if reachable.
    pub fn best(&self, prefix: Prefix) -> Option<&Selection> {
        self.loc_rib.get(&prefix)
    }

    /// Whether the route from `peer` for `prefix` is currently suppressed.
    pub fn is_suppressed(&self, peer: AsId, prefix: Prefix) -> bool {
        self.neighbors
            .get(&peer)
            .and_then(|n| n.adj_in.get(prefix))
            .map(|e| e.rfd.is_suppressed())
            .unwrap_or(false)
    }

    /// Current RFD penalty on (peer, prefix) at `now`, if RFD is enabled.
    pub fn rfd_penalty(&self, peer: AsId, prefix: Prefix, now: SimTime) -> Option<f64> {
        let n = self.neighbors.get(&peer)?;
        let params = n.policy.rfd_for(prefix)?;
        Some(
            n.adj_in
                .get(prefix)
                .map(|e| e.rfd.penalty_at(now, params))
                .unwrap_or(0.0),
        )
    }

    // ------------------------------------------------------------------
    // Inputs
    // ------------------------------------------------------------------

    /// Process an update received from `from`.
    pub fn handle_update(&mut self, from: AsId, update: BgpUpdate, now: SimTime) -> RouterOutput {
        let Some(neighbor) = self.neighbors.get_mut(&from) else {
            // Session gone (not modelled as an error — deliveries may race
            // a reconfiguration in principle).
            return RouterOutput::default();
        };
        let prefix = update.prefix;

        // 1. Loop detection: a path carrying our ASN makes the route
        //    unfeasible — treat as withdrawal, without an RFD penalty
        //    (RFC 2439 penalises route *changes*, and an unfeasible
        //    announcement never enters the RIB).
        let action = match update.action {
            BgpAction::Announce { ref path, .. } if path.contains(self.asn) => BgpAction::Withdraw,
            other => other,
        };

        // 2. Adj-RIB-In + flap classification.
        let (kind, rib_changed) = match action {
            BgpAction::Announce { path, aggregator } => {
                neighbor
                    .adj_in
                    .apply_announce(prefix, Route { path, aggregator }, now)
            }
            BgpAction::Withdraw => neighbor.adj_in.apply_withdraw(prefix, now),
        };

        // 3. RFD penalty accounting.
        let mut out = RouterOutput::default();
        let mut usability_changed = rib_changed;
        if let Some(params) = neighbor.policy.rfd_for(prefix).copied() {
            if kind != FlapKind::Duplicate {
                let entry = neighbor.adj_in.entry(prefix);
                match entry.rfd.record(kind, now, &params) {
                    RfdTransition::Suppressed => {
                        let at = entry
                            .rfd
                            .release_at(&params)
                            .expect("suppressed has release time");
                        out.rfd_timers.push((from, prefix, at));
                        out.rfd_suppressed = true;
                        usability_changed = true;
                    }
                    RfdTransition::Released => {
                        out.rfd_released = true;
                        usability_changed = true;
                    }
                    RfdTransition::StillSuppressed => {
                        // The route stays invisible; the armed timer will
                        // re-check and re-arm as needed. Nothing visible
                        // changed downstream.
                        usability_changed = false;
                    }
                    RfdTransition::StillUsable => {}
                }
            } else if neighbor
                .adj_in
                .get(prefix)
                .map(|e| e.rfd.is_suppressed())
                .unwrap_or(false)
            {
                usability_changed = false;
            }
        }

        if usability_changed {
            out.merge(self.reselect(prefix, now));
        }
        out
    }

    /// An RFD reuse timer fired for (peer, prefix).
    pub fn rfd_reuse_fired(&mut self, peer: AsId, prefix: Prefix, now: SimTime) -> RouterOutput {
        let mut out = RouterOutput::default();
        let Some(neighbor) = self.neighbors.get_mut(&peer) else {
            return out;
        };
        let Some(params) = neighbor.policy.rfd_for(prefix).copied() else {
            return out;
        };
        let Some(entry) = neighbor.adj_in.get_mut(prefix) else {
            return out;
        };
        if entry.rfd.tick(now, &params) {
            // Released: the stored route (if any) becomes usable again.
            out.rfd_released = true;
            out.merge(self.reselect(prefix, now));
        } else if entry.rfd.is_suppressed() {
            // Flaps while suppressed pushed the release time out; re-arm.
            // The new deadline must be strictly in the future: exp2/log2
            // rounding can make `release_at` lag `now` by an ulp while the
            // decayed penalty still reads a hair above the reuse
            // threshold, and re-arming at `now` would livelock the event
            // loop.
            let at = entry
                .rfd
                .release_at(&params)
                .expect("still suppressed")
                .max(now + netsim::SimDuration::from_millis(1));
            out.rfd_timers.push((peer, prefix, at));
        }
        out
    }

    /// An MRAI timer fired for (peer, prefix): flush the coalesced update.
    pub fn mrai_expired(&mut self, peer: AsId, prefix: Prefix, now: SimTime) -> RouterOutput {
        let mut out = RouterOutput::default();
        if let Some(neighbor) = self.neighbors.get_mut(&peer) {
            if let Some(update) = neighbor.mrai.expire(prefix, now) {
                out.sends.push((peer, update));
            }
        }
        out
    }

    /// The session to `peer` went down (e.g. a fault-injected reset).
    ///
    /// The per-session transient state resets with the TCP session: the
    /// Adj-RIB-Out is forgotten (the peer no longer holds our routes)
    /// and the MRAI gate discards its pending/coalesced updates. Every
    /// route learned on the session is implicitly withdrawn *through the
    /// normal RFD-aware path*, so the flap penalty accrues exactly as
    /// RFC 2439 prescribes for session loss. Returns one output per
    /// affected prefix (deterministic prefix order) so the driver can
    /// record each Loc-RIB change individually.
    pub fn session_down(&mut self, peer: AsId, now: SimTime) -> Vec<(Prefix, RouterOutput)> {
        let Some(neighbor) = self.neighbors.get_mut(&peer) else {
            return Vec::new();
        };
        neighbor.adj_out.clear();
        neighbor.mrai = MraiGate::new(neighbor.policy.mrai);
        let prefixes: Vec<Prefix> = neighbor
            .adj_in
            .iter()
            .filter(|(_, e)| e.route.is_some())
            .map(|(p, _)| *p)
            .collect();
        prefixes
            .into_iter()
            .map(|prefix| {
                (
                    prefix,
                    self.handle_update(peer, BgpUpdate::withdraw(prefix), now),
                )
            })
            .collect()
    }

    /// The session to `peer` re-established after a reset.
    ///
    /// BGP re-syncs a fresh session with a full table exchange: clear
    /// the (stale) Adj-RIB-Out and MRAI gate, then re-advertise the
    /// entire Loc-RIB towards this peer. On the peer's side each
    /// arriving announcement classifies as a re-advertisement flap —
    /// the RFD penalty cost of a session reset.
    pub fn session_up(&mut self, peer: AsId, now: SimTime) -> Vec<(Prefix, RouterOutput)> {
        let Some(neighbor) = self.neighbors.get_mut(&peer) else {
            return Vec::new();
        };
        neighbor.adj_out.clear();
        neighbor.mrai = MraiGate::new(neighbor.policy.mrai);
        let prefixes: Vec<Prefix> = self.loc_rib.keys().copied().collect();
        prefixes
            .into_iter()
            .map(|prefix| {
                let sel = self.loc_rib.get(&prefix).cloned();
                (prefix, self.export_to(peer, prefix, sel.as_ref(), now))
            })
            .collect()
    }

    /// Originate (announce) `prefix` locally, with an optional beacon stamp.
    pub fn originate(
        &mut self,
        prefix: Prefix,
        aggregator: Option<AggregatorStamp>,
        now: SimTime,
    ) -> RouterOutput {
        self.originated.insert(prefix, aggregator);
        self.reselect(prefix, now)
    }

    /// Withdraw a locally-originated prefix.
    pub fn withdraw_origin(&mut self, prefix: Prefix, now: SimTime) -> RouterOutput {
        self.originated.remove(&prefix);
        self.reselect(prefix, now)
    }

    // ------------------------------------------------------------------
    // Decision + export
    // ------------------------------------------------------------------

    /// Re-run the decision process for `prefix` and export any change.
    fn reselect(&mut self, prefix: Prefix, now: SimTime) -> RouterOutput {
        let new = self.compute_best(prefix);
        let old = self.loc_rib.get(&prefix);
        if old == new.as_ref() {
            return RouterOutput::default();
        }
        match new.clone() {
            Some(sel) => self.loc_rib.insert(prefix, sel),
            None => self.loc_rib.remove(&prefix),
        };

        let mut out = RouterOutput {
            loc_rib_change: Some(LocRibChange {
                prefix,
                route: new.as_ref().map(|s| s.exported_view(self.asn)),
            }),
            ..RouterOutput::default()
        };
        out.merge(self.export(prefix, new.as_ref(), now));
        out
    }

    fn compute_best(&self, prefix: Prefix) -> Option<Selection> {
        if let Some(aggregator) = self.originated.get(&prefix) {
            return Some(Selection::Local {
                aggregator: *aggregator,
            });
        }
        let candidates = self.neighbors.iter().filter_map(|(&asn, n)| {
            let entry = n.adj_in.get(prefix)?;
            let route = entry.usable()?;
            // Defensive loop check (sender-side split horizon should make
            // this unreachable, but policy bugs must not loop forever).
            if route.path.contains(self.asn) {
                return None;
            }
            Some(Candidate {
                neighbor: asn,
                relationship: n.policy.relationship,
                route,
            })
        });
        select_best(candidates).map(|c| Selection::Learned {
            neighbor: c.neighbor,
            route: c.route.clone(),
        })
    }

    /// Diff the desired advertisement against each neighbor's Adj-RIB-Out
    /// and emit the needed updates through the MRAI gate.
    fn export(
        &mut self,
        prefix: Prefix,
        selection: Option<&Selection>,
        now: SimTime,
    ) -> RouterOutput {
        let own = self.asn;
        // Who did we learn the best route from (split horizon), and what
        // relationship was it learned over (Gao–Rexford)?
        let (learned_from, learned_rel) = match selection {
            Some(Selection::Learned { neighbor, .. }) => {
                let rel = self.neighbors[neighbor].policy.relationship;
                (Some(*neighbor), Some(rel))
            }
            _ => (None, None),
        };

        let mut out = RouterOutput::default();
        for (&peer, neighbor) in &mut self.neighbors {
            Self::export_one(
                own,
                peer,
                neighbor,
                prefix,
                selection,
                learned_from,
                learned_rel,
                now,
                &mut out,
            );
        }
        out
    }

    /// [`Router::export`] restricted to one peer — used by
    /// [`Router::session_up`] to re-sync a re-established session.
    fn export_to(
        &mut self,
        peer: AsId,
        prefix: Prefix,
        selection: Option<&Selection>,
        now: SimTime,
    ) -> RouterOutput {
        let own = self.asn;
        let (learned_from, learned_rel) = match selection {
            Some(Selection::Learned { neighbor, .. }) => {
                let rel = self.neighbors[neighbor].policy.relationship;
                (Some(*neighbor), Some(rel))
            }
            _ => (None, None),
        };
        let mut out = RouterOutput::default();
        if let Some(neighbor) = self.neighbors.get_mut(&peer) {
            Self::export_one(
                own,
                peer,
                neighbor,
                prefix,
                selection,
                learned_from,
                learned_rel,
                now,
                &mut out,
            );
        }
        out
    }

    /// The per-neighbor half of the export diff: decide the desired
    /// advertisement, diff it against the Adj-RIB-Out, and push the
    /// resulting update through the MRAI gate.
    #[allow(clippy::too_many_arguments)]
    fn export_one(
        own: AsId,
        peer: AsId,
        neighbor: &mut Neighbor,
        prefix: Prefix,
        selection: Option<&Selection>,
        learned_from: Option<AsId>,
        learned_rel: Option<Relationship>,
        now: SimTime,
        out: &mut RouterOutput,
    ) {
        // Desired route towards this peer.
        let desired: Option<Route> = match selection {
            None => None,
            Some(sel) => {
                // Split horizon (never advertise back to the peer the
                // route was learned from) or export policy forbids.
                if learned_from == Some(peer)
                    || !ExportPolicy::permits(learned_rel, neighbor.policy.relationship)
                {
                    None
                } else {
                    let base = sel.exported_view(own);
                    let extra = neighbor.policy.prepend_extra;
                    Some(Route {
                        path: if extra > 0 {
                            base.path.prepend(own, extra)
                        } else {
                            base.path
                        },
                        aggregator: base.aggregator,
                    })
                }
            }
        };

        let current = neighbor.adj_out.get(&prefix);
        if current == desired.as_ref() {
            return;
        }
        let update = match &desired {
            Some(route) => BgpUpdate::announce(prefix, route.path.clone(), route.aggregator),
            None => {
                if current.is_none() {
                    return; // never advertised, nothing to withdraw
                }
                BgpUpdate::withdraw(prefix)
            }
        };
        match desired {
            Some(route) => {
                neighbor.adj_out.insert(prefix, route);
            }
            None => {
                neighbor.adj_out.remove(&prefix);
            }
        }
        match neighbor.mrai.submit(update, now) {
            MraiVerdict::SendNow(u) => out.sends.push((peer, u)),
            MraiVerdict::Deferred { at, arm } => {
                out.mrai_deferrals += 1;
                if arm {
                    out.mrai_timers.push((peer, prefix, at));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Relationship;
    use crate::rfd::VendorProfile;
    use netsim::SimDuration;

    fn pfx() -> Prefix {
        "10.0.0.0/24".parse().unwrap()
    }

    fn plain(rel: Relationship) -> SessionPolicy {
        SessionPolicy::plain(rel)
    }

    /// Router AS1 with customer AS2 and provider AS3.
    fn sample_router() -> Router {
        let mut r = Router::new(AsId(1));
        r.add_session(AsId(2), plain(Relationship::Customer));
        r.add_session(AsId(3), plain(Relationship::Provider));
        r
    }

    fn announce_from(origin: u32) -> BgpUpdate {
        BgpUpdate::announce(pfx(), AsPath::from_slice(&[AsId(origin)]), None)
    }

    #[test]
    fn origination_exports_to_all_neighbors() {
        let mut r = sample_router();
        let out = r.originate(
            pfx(),
            Some(AggregatorStamp::new(SimTime::ZERO)),
            SimTime::ZERO,
        );
        assert_eq!(out.sends.len(), 2);
        for (_, u) in &out.sends {
            match &u.action {
                BgpAction::Announce { path, aggregator } => {
                    assert_eq!(path.asns(), &[AsId(1)]);
                    assert!(aggregator.is_some());
                }
                _ => panic!("expected announce"),
            }
        }
        assert!(matches!(r.best(pfx()), Some(Selection::Local { .. })));
    }

    #[test]
    fn learned_route_prepends_own_asn_on_export() {
        let mut r = sample_router();
        let out = r.handle_update(AsId(2), announce_from(2), SimTime::ZERO);
        // Learned from customer → export to provider AS3 (not back to AS2).
        assert_eq!(out.sends.len(), 1);
        let (to, u) = &out.sends[0];
        assert_eq!(*to, AsId(3));
        match &u.action {
            BgpAction::Announce { path, .. } => assert_eq!(path.asns(), &[AsId(1), AsId(2)]),
            _ => panic!("expected announce"),
        }
    }

    #[test]
    fn provider_route_not_exported_to_other_provider_or_peer() {
        let mut r = Router::new(AsId(1));
        r.add_session(AsId(2), plain(Relationship::Provider));
        r.add_session(AsId(3), plain(Relationship::Provider));
        r.add_session(AsId(4), plain(Relationship::Peer));
        r.add_session(AsId(5), plain(Relationship::Customer));
        let out = r.handle_update(AsId(2), announce_from(2), SimTime::ZERO);
        let dests: Vec<AsId> = out.sends.iter().map(|(d, _)| *d).collect();
        assert_eq!(
            dests,
            vec![AsId(5)],
            "provider route goes only to customers"
        );
    }

    #[test]
    fn withdrawal_retracts_only_where_advertised() {
        let mut r = sample_router();
        r.handle_update(AsId(2), announce_from(2), SimTime::ZERO);
        let out = r.handle_update(AsId(2), BgpUpdate::withdraw(pfx()), SimTime::from_secs(1));
        assert_eq!(out.sends.len(), 1);
        let (to, u) = &out.sends[0];
        assert_eq!(*to, AsId(3));
        assert!(matches!(u.action, BgpAction::Withdraw));
        assert!(r.best(pfx()).is_none());
    }

    #[test]
    fn duplicate_withdrawal_is_silent() {
        let mut r = sample_router();
        let out = r.handle_update(AsId(2), BgpUpdate::withdraw(pfx()), SimTime::ZERO);
        assert!(out.sends.is_empty());
        assert!(out.loc_rib_change.is_none());
    }

    #[test]
    fn path_hunting_switches_to_alternative() {
        // AS1 has two customers advertising the same prefix.
        let mut r = Router::new(AsId(1));
        r.add_session(AsId(2), plain(Relationship::Customer));
        r.add_session(AsId(4), plain(Relationship::Customer));
        r.add_session(AsId(3), plain(Relationship::Provider));
        r.handle_update(AsId(2), announce_from(2), SimTime::ZERO);
        r.handle_update(
            AsId(4),
            BgpUpdate::announce(pfx(), AsPath::from_slice(&[AsId(4), AsId(9)]), None),
            SimTime::from_secs(1),
        );
        // Best is AS2 (shorter). Withdraw it → switch to AS4's longer path
        // and *announce* (not withdraw) to the provider: path hunting.
        // The best change also retracts the old advertisement towards AS4
        // (now the learning neighbor) and offers the new best to AS2.
        let out = r.handle_update(AsId(2), BgpUpdate::withdraw(pfx()), SimTime::from_secs(2));
        let to_provider: Vec<_> = out.sends.iter().filter(|(to, _)| *to == AsId(3)).collect();
        assert_eq!(to_provider.len(), 1);
        match &to_provider[0].1.action {
            BgpAction::Announce { path, .. } => {
                assert_eq!(path.asns(), &[AsId(1), AsId(4), AsId(9)]);
            }
            _ => panic!("expected alternative-path announce"),
        }
        // Split horizon: the new advertisement never goes back to AS4.
        assert!(out
            .sends
            .iter()
            .filter(|(to, _)| *to == AsId(4))
            .all(|(_, u)| matches!(u.action, BgpAction::Withdraw)));
    }

    #[test]
    fn looped_announcement_treated_as_withdrawal() {
        let mut r = sample_router();
        r.handle_update(AsId(2), announce_from(2), SimTime::ZERO);
        // AS2 now (bogusly) sends a path containing AS1.
        let looped = BgpUpdate::announce(pfx(), AsPath::from_slice(&[AsId(2), AsId(1)]), None);
        let out = r.handle_update(AsId(2), looped, SimTime::from_secs(1));
        assert!(r.best(pfx()).is_none());
        assert!(out
            .sends
            .iter()
            .any(|(_, u)| matches!(u.action, BgpAction::Withdraw)));
    }

    #[test]
    fn rfd_suppression_withdraws_downstream_and_releases_later() {
        let params = VendorProfile::Cisco.params();
        let mut r = Router::new(AsId(1));
        r.add_session(AsId(2), plain(Relationship::Customer).with_rfd(params));
        r.add_session(AsId(3), plain(Relationship::Provider));

        let mut now = SimTime::ZERO;
        let mut suppressed_at = None;
        // Flap until suppression: W/A alternating every 60 s.
        for i in 0..40 {
            let out = if i % 2 == 0 {
                r.handle_update(AsId(2), BgpUpdate::withdraw(pfx()), now)
            } else {
                r.handle_update(AsId(2), announce_from(2), now)
            };
            if let Some(&(_, _, at)) = out.rfd_timers.first() {
                suppressed_at = Some((now, at));
                break;
            }
            now += SimDuration::from_secs(60);
        }
        let (t_supp, t_release) = suppressed_at.expect("suppression must trigger");
        assert!(r.is_suppressed(AsId(2), pfx()));
        assert!(t_release > t_supp + SimDuration::from_mins(10));

        // While suppressed, further updates do not propagate downstream.
        let out = r.handle_update(
            AsId(2),
            announce_from(2),
            t_supp + SimDuration::from_secs(60),
        );
        assert!(out.sends.is_empty(), "suppressed flaps must not export");

        // The reuse timer may need re-arming (the extra flap above pushed
        // release later); follow the chain until release.
        let mut fire_at = t_release;
        let mut released = false;
        for _ in 0..10 {
            let out = r.rfd_reuse_fired(AsId(2), pfx(), fire_at);
            if let Some(&(_, _, at)) = out.rfd_timers.first() {
                fire_at = at;
                continue;
            }
            // Released: the stored announcement re-exports downstream.
            released = true;
            assert!(
                out.sends
                    .iter()
                    .any(|(to, u)| *to == AsId(3) && u.action.is_announce()),
                "release must re-advertise"
            );
            break;
        }
        assert!(released, "route must eventually be released");
        assert!(!r.is_suppressed(AsId(2), pfx()));
    }

    #[test]
    fn reuse_timer_rearm_chain_terminates_and_moves_forward() {
        // Regression: firing the reuse timer early must re-arm at a
        // strictly later instant (float rounding in the decay/inverse
        // pair once produced `release_at == now` with the route still
        // suppressed, livelocking the event loop).
        let params = VendorProfile::Juniper.params();
        let mut r = Router::new(AsId(1));
        r.add_session(AsId(2), plain(Relationship::Customer).with_rfd(params));
        r.add_session(AsId(3), plain(Relationship::Provider));
        let mut now = SimTime::ZERO;
        while !r.is_suppressed(AsId(2), pfx()) {
            r.handle_update(AsId(2), BgpUpdate::withdraw(pfx()), now);
            now += SimDuration::from_secs(30);
            r.handle_update(AsId(2), announce_from(2), now);
            now += SimDuration::from_secs(30);
        }
        // Fire deliberately early, then follow the re-arm chain.
        let mut fire_at = now + SimDuration::from_secs(1);
        for _ in 0..100_000 {
            let out = r.rfd_reuse_fired(AsId(2), pfx(), fire_at);
            match out.rfd_timers.first() {
                Some(&(_, _, at)) => {
                    assert!(at > fire_at, "re-arm must move forward: {at} vs {fire_at}");
                    fire_at = at;
                }
                None => {
                    assert!(!r.is_suppressed(AsId(2), pfx()));
                    return;
                }
            }
        }
        panic!("re-arm chain did not terminate");
    }

    #[test]
    fn rfd_only_applies_to_configured_session() {
        let params = VendorProfile::Juniper.params();
        let mut r = Router::new(AsId(1));
        r.add_session(AsId(2), plain(Relationship::Peer).with_rfd(params));
        r.add_session(AsId(4), plain(Relationship::Peer));
        r.add_session(AsId(3), plain(Relationship::Customer));

        let mut now = SimTime::ZERO;
        for i in 0..30 {
            let (u2, u4) = if i % 2 == 0 {
                (BgpUpdate::withdraw(pfx()), BgpUpdate::withdraw(pfx()))
            } else {
                (
                    announce_from(2),
                    BgpUpdate::announce(pfx(), AsPath::from_slice(&[AsId(4)]), None),
                )
            };
            r.handle_update(AsId(2), u2, now);
            r.handle_update(AsId(4), u4, now);
            now += SimDuration::from_secs(60);
        }
        assert!(r.is_suppressed(AsId(2), pfx()));
        assert!(!r.is_suppressed(AsId(4), pfx()));
        // The undamped session still provides a best route.
        assert!(matches!(
            r.best(pfx()),
            Some(Selection::Learned { neighbor, .. }) if *neighbor == AsId(4)
        ));
    }

    #[test]
    fn mrai_defers_rapid_announcements() {
        let mut r = Router::new(AsId(1));
        r.add_session(AsId(2), plain(Relationship::Customer));
        r.add_session(
            AsId(3),
            plain(Relationship::Provider).with_mrai(SimDuration::from_secs(30)),
        );
        // First announce passes.
        let out = r.handle_update(AsId(2), announce_from(2), SimTime::ZERO);
        assert_eq!(out.sends.len(), 1);
        // Attribute change 5 s later defers (gate closed).
        let changed = BgpUpdate::announce(pfx(), AsPath::from_slice(&[AsId(2), AsId(9)]), None);
        let out = r.handle_update(AsId(2), changed, SimTime::from_secs(5));
        assert!(out.sends.is_empty());
        assert_eq!(out.mrai_timers.len(), 1);
        let (peer, prefix, at) = out.mrai_timers[0];
        assert_eq!((peer, prefix), (AsId(3), pfx()));
        // Expiry flushes the pending (coalesced) announcement.
        let out = r.mrai_expired(peer, prefix, at);
        assert_eq!(out.sends.len(), 1);
        assert!(out.sends[0].1.action.is_announce());
    }

    #[test]
    fn prepend_extra_lengthens_exported_path() {
        let mut r = Router::new(AsId(1));
        r.add_session(AsId(2), plain(Relationship::Customer));
        let mut pol = plain(Relationship::Provider);
        pol.prepend_extra = 2;
        r.add_session(AsId(3), pol);
        let out = r.handle_update(AsId(2), announce_from(2), SimTime::ZERO);
        let (_, u) = &out.sends[0];
        match &u.action {
            BgpAction::Announce { path, .. } => {
                assert_eq!(path.asns(), &[AsId(1), AsId(1), AsId(1), AsId(2)]);
            }
            _ => panic!("expected announce"),
        }
    }

    #[test]
    fn loc_rib_change_reports_exported_view() {
        let mut r = sample_router();
        let out = r.handle_update(AsId(2), announce_from(2), SimTime::ZERO);
        let change = out.loc_rib_change.expect("best changed");
        assert_eq!(change.prefix, pfx());
        let route = change.route.expect("announced");
        assert_eq!(route.path.asns(), &[AsId(1), AsId(2)]);
    }

    #[test]
    fn better_relationship_replaces_current_best() {
        let mut r = sample_router();
        // Provider route first.
        r.handle_update(
            AsId(3),
            BgpUpdate::announce(pfx(), AsPath::from_slice(&[AsId(3)]), None),
            SimTime::ZERO,
        );
        assert!(
            matches!(r.best(pfx()), Some(Selection::Learned { neighbor, .. }) if *neighbor == AsId(3))
        );
        // Customer route displaces it despite equal length.
        let out = r.handle_update(AsId(2), announce_from(2), SimTime::from_secs(1));
        assert!(
            matches!(r.best(pfx()), Some(Selection::Learned { neighbor, .. }) if *neighbor == AsId(2))
        );
        // The new best is customer-learned → exported to the provider.
        assert!(out.sends.iter().any(|(to, _)| *to == AsId(3)));
    }

    #[test]
    fn session_down_withdraws_learned_routes_and_propagates() {
        let mut r = sample_router();
        r.handle_update(AsId(2), announce_from(2), SimTime::ZERO);
        assert!(r.best(pfx()).is_some());
        let outs = r.session_down(AsId(2), SimTime::from_secs(10));
        assert_eq!(outs.len(), 1);
        let (prefix, out) = &outs[0];
        assert_eq!(*prefix, pfx());
        // The loss propagates downstream as a withdrawal to AS3.
        assert!(out
            .sends
            .iter()
            .any(|(to, u)| *to == AsId(3) && matches!(u.action, BgpAction::Withdraw)));
        assert!(r.best(pfx()).is_none());
    }

    #[test]
    fn session_down_accrues_rfd_penalty() {
        let params = VendorProfile::Cisco.params();
        let mut r = Router::new(AsId(1));
        r.add_session(AsId(2), plain(Relationship::Customer).with_rfd(params));
        r.handle_update(AsId(2), announce_from(2), SimTime::ZERO);
        let before = r
            .rfd_penalty(AsId(2), pfx(), SimTime::from_secs(10))
            .unwrap();
        r.session_down(AsId(2), SimTime::from_secs(10));
        let after = r
            .rfd_penalty(AsId(2), pfx(), SimTime::from_secs(10))
            .unwrap();
        assert!(
            after > before,
            "session loss must be penalised as a flap ({before} -> {after})"
        );
    }

    #[test]
    fn session_up_resyncs_full_loc_rib_to_peer() {
        let mut r = sample_router();
        // AS1 originates one prefix and learns another from AS3.
        let other: Prefix = "10.0.1.0/24".parse().unwrap();
        r.originate(pfx(), None, SimTime::ZERO);
        r.handle_update(
            AsId(3),
            BgpUpdate::announce(other, AsPath::from_slice(&[AsId(3)]), None),
            SimTime::ZERO,
        );
        // Session to the customer AS2 resets.
        r.session_down(AsId(2), SimTime::from_secs(5));
        let outs = r.session_up(AsId(2), SimTime::from_secs(65));
        // Both Loc-RIB prefixes re-advertise towards the customer.
        let announced: Vec<Prefix> = outs
            .iter()
            .flat_map(|(_, out)| out.sends.iter())
            .filter(|(to, u)| *to == AsId(2) && u.action.is_announce())
            .map(|(_, u)| u.prefix)
            .collect();
        assert!(announced.contains(&pfx()), "origin must re-advertise");
        assert!(
            announced.contains(&other),
            "learned route must re-advertise"
        );
    }

    #[test]
    fn session_up_readvertisement_flap_classifies_on_receiver() {
        // The receiving side of a re-established session sees the full
        // re-sync as re-advertisement flaps.
        let mut r = sample_router();
        r.handle_update(AsId(2), announce_from(2), SimTime::ZERO);
        r.session_down(AsId(2), SimTime::from_secs(10));
        let entry = r.neighbors[&AsId(2)].adj_in.get(pfx()).unwrap();
        assert!(entry.route.is_none(), "session loss withdraws the route");
        assert!(entry.ever_announced, "history survives the reset");
    }

    #[test]
    fn session_down_without_session_or_routes_is_silent() {
        let mut r = sample_router();
        assert!(r.session_down(AsId(99), SimTime::ZERO).is_empty());
        assert!(r.session_down(AsId(2), SimTime::ZERO).is_empty());
        assert!(r.session_up(AsId(99), SimTime::ZERO).is_empty());
    }
}
