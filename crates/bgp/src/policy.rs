//! Business relationships, export rules and per-session configuration.
//!
//! Inter-domain routing policy in the simulator follows the standard
//! Gao–Rexford model: every BGP session is either *customer–provider* or
//! *peer–peer*, routers prefer customer routes over peer routes over
//! provider routes, and a route learned from a peer or provider is only
//! exported to customers ("valley-free" routing). This matches the paper's
//! topology reasoning — e.g. §6.1 explains missed dampers by noting that
//! beacon signals placed near Tier-1s travel provider→customer or
//! peer→peer, so an AS damping *only customers* is invisible.
//!
//! Per-session knobs live in [`SessionPolicy`]: inbound RFD (optionally
//! limited to a prefix-length range — §2.1 mentions operators damping
//! different prefix lengths differently), outbound MRAI, and outbound
//! prepending. Per-session RFD is what lets an experiment deploy the
//! paper's *inconsistently damping* AS-701 analogue (damp every neighbor
//! except one).

use serde::{Deserialize, Serialize};

use netsim::SimDuration;

use crate::prefix::Prefix;
use crate::rfd::RfdParams;

/// The business relationship of a neighbor, *from the local AS's
/// perspective*: `Customer` means "this neighbor is my customer".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// The neighbor pays the local AS for transit.
    Customer,
    /// Settlement-free peering.
    Peer,
    /// The local AS pays the neighbor for transit.
    Provider,
}

impl Relationship {
    /// The relationship as seen from the other end of the session.
    pub fn reversed(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Peer => Relationship::Peer,
            Relationship::Provider => Relationship::Customer,
        }
    }

    /// Local preference assigned to routes learned from this neighbor:
    /// customer (100) > peer (90) > provider (80).
    pub fn local_pref(self) -> u32 {
        match self {
            Relationship::Customer => 100,
            Relationship::Peer => 90,
            Relationship::Provider => 80,
        }
    }
}

/// Gao–Rexford export filter.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct ExportPolicy;

impl ExportPolicy {
    /// May a route learned from `learned_from` be exported to a neighbor
    /// with relationship `export_to`? Locally-originated routes pass
    /// `None` for `learned_from` and are exported to everyone.
    pub fn permits(learned_from: Option<Relationship>, export_to: Relationship) -> bool {
        match learned_from {
            // Own routes and customer routes go to everyone.
            None | Some(Relationship::Customer) => true,
            // Peer/provider routes go only to customers.
            Some(Relationship::Peer) | Some(Relationship::Provider) => {
                export_to == Relationship::Customer
            }
        }
    }
}

/// Inclusive prefix-length bounds for applying RFD on a session.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PrefixLenRange {
    /// Minimum prefix length (inclusive).
    pub min: u8,
    /// Maximum prefix length (inclusive).
    pub max: u8,
}

impl PrefixLenRange {
    /// The full range — damp every prefix length.
    pub const ALL: PrefixLenRange = PrefixLenRange { min: 0, max: 32 };

    /// True if `prefix` falls inside the range.
    pub fn contains(self, prefix: Prefix) -> bool {
        (self.min..=self.max).contains(&prefix.len())
    }
}

/// Configuration of one directed session (how the local router treats one
/// neighbor).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct SessionPolicy {
    /// Business relationship of the neighbor.
    pub relationship: Relationship,
    /// Inbound route flap damping on this session, if enabled.
    pub rfd: Option<RfdParams>,
    /// Prefix lengths the RFD config applies to.
    pub rfd_prefix_lens: PrefixLenRange,
    /// Outbound MRAI interval for announcements, if enabled.
    pub mrai: Option<SimDuration>,
    /// Extra copies of the local ASN prepended on export (0 = none beyond
    /// the mandatory one).
    pub prepend_extra: usize,
}

impl SessionPolicy {
    /// A plain session with the given relationship: no RFD, no MRAI.
    pub fn plain(relationship: Relationship) -> Self {
        SessionPolicy {
            relationship,
            rfd: None,
            rfd_prefix_lens: PrefixLenRange::ALL,
            mrai: None,
            prepend_extra: 0,
        }
    }

    /// Enable inbound RFD with the given parameters.
    pub fn with_rfd(mut self, params: RfdParams) -> Self {
        self.rfd = Some(params);
        self
    }

    /// Enable outbound MRAI.
    pub fn with_mrai(mut self, interval: SimDuration) -> Self {
        self.mrai = Some(interval);
        self
    }

    /// Restrict RFD to a prefix-length range.
    pub fn with_rfd_prefix_lens(mut self, range: PrefixLenRange) -> Self {
        self.rfd_prefix_lens = range;
        self
    }

    /// The RFD parameters that apply to `prefix` on this session, if any.
    pub fn rfd_for(&self, prefix: Prefix) -> Option<&RfdParams> {
        match &self.rfd {
            Some(p) if self.rfd_prefix_lens.contains(prefix) => Some(p),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rfd::VendorProfile;

    #[test]
    fn reversed_is_involutive() {
        for r in [
            Relationship::Customer,
            Relationship::Peer,
            Relationship::Provider,
        ] {
            assert_eq!(r.reversed().reversed(), r);
        }
        assert_eq!(Relationship::Customer.reversed(), Relationship::Provider);
        assert_eq!(Relationship::Peer.reversed(), Relationship::Peer);
    }

    #[test]
    fn local_pref_ordering() {
        assert!(Relationship::Customer.local_pref() > Relationship::Peer.local_pref());
        assert!(Relationship::Peer.local_pref() > Relationship::Provider.local_pref());
    }

    #[test]
    fn gao_rexford_export_matrix() {
        use Relationship::*;
        // Customer routes and own routes go everywhere.
        for to in [Customer, Peer, Provider] {
            assert!(ExportPolicy::permits(Some(Customer), to));
            assert!(ExportPolicy::permits(None, to));
        }
        // Peer/provider routes only to customers.
        for from in [Peer, Provider] {
            assert!(ExportPolicy::permits(Some(from), Customer));
            assert!(!ExportPolicy::permits(Some(from), Peer));
            assert!(!ExportPolicy::permits(Some(from), Provider));
        }
    }

    #[test]
    fn prefix_len_range_filters_rfd() {
        let pol = SessionPolicy::plain(Relationship::Peer)
            .with_rfd(VendorProfile::Cisco.params())
            .with_rfd_prefix_lens(PrefixLenRange { min: 20, max: 24 });
        let p24: Prefix = "10.0.0.0/24".parse().unwrap();
        let p16: Prefix = "10.0.0.0/16".parse().unwrap();
        assert!(pol.rfd_for(p24).is_some());
        assert!(pol.rfd_for(p16).is_none());
    }

    #[test]
    fn plain_session_has_no_rfd_or_mrai() {
        let pol = SessionPolicy::plain(Relationship::Provider);
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        assert!(pol.rfd_for(p).is_none());
        assert!(pol.mrai.is_none());
        assert_eq!(pol.prepend_extra, 0);
    }

    #[test]
    fn builders_compose() {
        let pol = SessionPolicy::plain(Relationship::Customer)
            .with_rfd(VendorProfile::Juniper.params())
            .with_mrai(SimDuration::from_secs(30));
        assert!(pol.rfd.is_some());
        assert_eq!(pol.mrai, Some(SimDuration::from_secs(30)));
        let any: Prefix = "192.0.2.0/24".parse().unwrap();
        assert!(pol.rfd_for(any).is_some());
    }
}
