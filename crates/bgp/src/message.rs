//! BGP message and attribute types.
//!
//! The simulator exchanges [`BgpUpdate`]s: an announcement (carrying an
//! [`AsPath`] and optional transitive [`AggregatorStamp`]) or a withdrawal
//! for a single prefix. Real UPDATE messages can pack several NLRI; one
//! prefix per message is equivalent at the routing level and keeps the
//! event queue simple.

use std::fmt;

use serde::{Deserialize, Serialize};

use netsim::SimTime;

use crate::prefix::Prefix;

/// An Autonomous System number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An AS path: the sequence of ASs a route has traversed, most recent
/// (neighbor of the receiver) first, origin last. Prepending is represented
/// naturally by repeated entries.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AsPath(Vec<AsId>);

impl AsPath {
    /// The empty path (a route originated locally).
    pub fn empty() -> Self {
        AsPath(Vec::new())
    }

    /// Build from an ordered list (first hop → origin).
    pub fn from_slice(asns: &[AsId]) -> Self {
        AsPath(asns.to_vec())
    }

    /// The ASs on the path, first hop first.
    pub fn asns(&self) -> &[AsId] {
        &self.0
    }

    /// Path length *including* prepending (what the decision process uses).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for a locally-originated route.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The originating AS (last element), if any.
    pub fn origin(&self) -> Option<AsId> {
        self.0.last().copied()
    }

    /// True if `asn` appears anywhere on the path (receiver-side loop check).
    pub fn contains(&self, asn: AsId) -> bool {
        self.0.contains(&asn)
    }

    /// A new path with `asn` prepended `count` times (sender-side export).
    pub fn prepend(&self, asn: AsId, count: usize) -> AsPath {
        let mut v = Vec::with_capacity(self.0.len() + count);
        v.extend(std::iter::repeat_n(asn, count));
        v.extend_from_slice(&self.0);
        AsPath(v)
    }

    /// The path with consecutive duplicates collapsed — the paper's path
    /// cleaning step ("paths are cleaned by removing AS path prepending").
    pub fn deduplicated(&self) -> AsPath {
        let mut v: Vec<AsId> = Vec::with_capacity(self.0.len());
        for &a in &self.0 {
            if v.last() != Some(&a) {
                v.push(a);
            }
        }
        AsPath(v)
    }

    /// True if the *deduplicated* path visits some AS twice (a routing loop).
    pub fn has_loop(&self) -> bool {
        let d = self.deduplicated();
        let mut seen = std::collections::HashSet::with_capacity(d.0.len());
        !d.0.iter().all(|a| seen.insert(*a))
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|a| a.0.to_string()).collect();
        write!(f, "[{}]", parts.join(" "))
    }
}

impl fmt::Debug for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromIterator<AsId> for AsPath {
    fn from_iter<T: IntoIterator<Item = AsId>>(iter: T) -> Self {
        AsPath(iter.into_iter().collect())
    }
}

/// The transitive aggregator attribute, repurposed (as by the RIPE beacons
/// and the paper's RFD beacons) to carry the beacon's send timestamp so
/// vantage points can attribute an update to the beacon event that caused
/// it. `valid` models the 1 % of real announcements the paper observed with
/// an empty/invalid aggregator IP, which their pipeline discards.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct AggregatorStamp {
    /// Beacon send time encoded by the originator.
    pub sent_at: SimTime,
    /// False when the aggregator IP field was mangled en route.
    pub valid: bool,
}

impl AggregatorStamp {
    /// A well-formed stamp for a beacon event at `sent_at`.
    pub fn new(sent_at: SimTime) -> Self {
        AggregatorStamp {
            sent_at,
            valid: true,
        }
    }

    /// The stamp with its aggregator IP corrupted (timestamp unusable).
    pub fn corrupted(self) -> Self {
        AggregatorStamp {
            valid: false,
            ..self
        }
    }
}

/// What an update does to a prefix.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BgpAction {
    /// Advertise a route with the given path and optional aggregator stamp.
    Announce {
        /// AS path, first hop first (receiver's neighbor is `path[0]`).
        path: AsPath,
        /// Transitive beacon timestamp, forwarded verbatim.
        aggregator: Option<AggregatorStamp>,
    },
    /// Withdraw any previously advertised route for the prefix.
    Withdraw,
}

impl BgpAction {
    /// True for an announcement.
    pub fn is_announce(&self) -> bool {
        matches!(self, BgpAction::Announce { .. })
    }
}

/// A single-prefix BGP UPDATE travelling over a session.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BgpUpdate {
    /// The affected prefix.
    pub prefix: Prefix,
    /// Announce or withdraw.
    pub action: BgpAction,
}

impl BgpUpdate {
    /// Announcement constructor.
    pub fn announce(prefix: Prefix, path: AsPath, aggregator: Option<AggregatorStamp>) -> Self {
        BgpUpdate {
            prefix,
            action: BgpAction::Announce { path, aggregator },
        }
    }

    /// Withdrawal constructor.
    pub fn withdraw(prefix: Prefix) -> Self {
        BgpUpdate {
            prefix,
            action: BgpAction::Withdraw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ids: &[u32]) -> AsPath {
        ids.iter().map(|&i| AsId(i)).collect()
    }

    #[test]
    fn prepend_builds_path_towards_receiver() {
        let path = p(&[2, 3]);
        let out = path.prepend(AsId(1), 1);
        assert_eq!(out.asns(), &[AsId(1), AsId(2), AsId(3)]);
        assert_eq!(out.origin(), Some(AsId(3)));
    }

    #[test]
    fn prepending_increases_length_only() {
        let path = p(&[2, 3]);
        let padded = path.prepend(AsId(2), 3);
        assert_eq!(padded.len(), 5);
        assert_eq!(padded.deduplicated(), p(&[2, 3]));
    }

    #[test]
    fn dedup_removes_consecutive_only() {
        let path = p(&[1, 1, 2, 2, 2, 3, 1]);
        assert_eq!(path.deduplicated(), p(&[1, 2, 3, 1]));
    }

    #[test]
    fn loop_detection_ignores_prepending() {
        assert!(!p(&[1, 1, 1, 2]).has_loop());
        assert!(p(&[1, 2, 1]).has_loop());
        assert!(!p(&[]).has_loop());
    }

    #[test]
    fn contains_checks_membership() {
        let path = p(&[7, 8, 9]);
        assert!(path.contains(AsId(8)));
        assert!(!path.contains(AsId(10)));
    }

    #[test]
    fn empty_path_is_local_origin() {
        let e = AsPath::empty();
        assert!(e.is_empty());
        assert_eq!(e.origin(), None);
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(p(&[1, 2]).to_string(), "[1 2]");
        assert_eq!(AsId(65000).to_string(), "AS65000");
    }

    #[test]
    fn aggregator_corruption_clears_validity() {
        let s = AggregatorStamp::new(SimTime::from_secs(5));
        assert!(s.valid);
        let c = s.corrupted();
        assert!(!c.valid);
        assert_eq!(c.sent_at, s.sent_at);
    }

    #[test]
    fn update_constructors() {
        let pfx: Prefix = "10.0.0.0/24".parse().unwrap();
        let a = BgpUpdate::announce(pfx, p(&[1]), None);
        assert!(a.action.is_announce());
        let w = BgpUpdate::withdraw(pfx);
        assert!(!w.action.is_announce());
    }
}
