//! The BGP decision process.
//!
//! Given every *usable* candidate route for a prefix (one per neighbor,
//! with suppressed and looped routes already excluded), pick the best by
//! the standard ladder:
//!
//! 1. highest local preference (from the business relationship:
//!    customer > peer > provider);
//! 2. shortest AS path (prepending counts);
//! 3. lowest neighbor AS number (deterministic tie-break, standing in for
//!    the IGP/router-id steps of real implementations).
//!
//! A locally-originated route always wins — the simulator handles that in
//! the router before consulting this module.

use crate::message::AsId;
use crate::policy::Relationship;
use crate::rib::Route;

/// One candidate in the decision process.
#[derive(Clone, Debug)]
pub struct Candidate<'a> {
    /// The neighbor the route was learned from.
    pub neighbor: AsId,
    /// Relationship of that neighbor (determines local preference).
    pub relationship: Relationship,
    /// The route itself.
    pub route: &'a Route,
}

impl Candidate<'_> {
    /// Lexicographic preference key: *larger is better*.
    /// (local_pref ↑, path length ↓, neighbor ASN ↓)
    fn key(&self) -> (u32, isize, i64) {
        (
            self.relationship.local_pref(),
            -(self.route.path.len() as isize),
            -i64::from(self.neighbor.0),
        )
    }
}

/// Select the best route among candidates; `None` when empty.
pub fn select_best<'a>(
    candidates: impl IntoIterator<Item = Candidate<'a>>,
) -> Option<Candidate<'a>> {
    candidates.into_iter().max_by(|a, b| a.key().cmp(&b.key()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::AsPath;

    fn route_with_len(len: usize) -> Route {
        let path: AsPath = (0..len as u32).map(|i| AsId(1000 + i)).collect();
        Route {
            path,
            aggregator: None,
        }
    }

    fn cand(neighbor: u32, rel: Relationship, route: &Route) -> Candidate<'_> {
        Candidate {
            neighbor: AsId(neighbor),
            relationship: rel,
            route,
        }
    }

    #[test]
    fn empty_input_selects_nothing() {
        assert!(select_best(std::iter::empty()).is_none());
    }

    #[test]
    fn customer_beats_shorter_provider_path() {
        let long = route_with_len(5);
        let short = route_with_len(1);
        let best = select_best(vec![
            cand(1, Relationship::Customer, &long),
            cand(2, Relationship::Provider, &short),
        ])
        .unwrap();
        assert_eq!(best.neighbor, AsId(1), "local-pref dominates path length");
    }

    #[test]
    fn shorter_path_wins_within_same_pref() {
        let long = route_with_len(4);
        let short = route_with_len(2);
        let best = select_best(vec![
            cand(9, Relationship::Peer, &long),
            cand(1, Relationship::Peer, &short),
        ])
        .unwrap();
        assert_eq!(best.neighbor, AsId(1));
    }

    #[test]
    fn lowest_neighbor_id_breaks_full_ties() {
        let a = route_with_len(3);
        let b = route_with_len(3);
        let best = select_best(vec![
            cand(700, Relationship::Peer, &a),
            cand(30, Relationship::Peer, &b),
        ])
        .unwrap();
        assert_eq!(best.neighbor, AsId(30));
    }

    #[test]
    fn prepending_counts_against_path() {
        let plain = route_with_len(3);
        let prepended = Route {
            path: route_with_len(2).path.prepend(AsId(77), 3), // length 5
            aggregator: None,
        };
        let best = select_best(vec![
            cand(1, Relationship::Peer, &prepended),
            cand(2, Relationship::Peer, &plain),
        ])
        .unwrap();
        assert_eq!(best.neighbor, AsId(2));
    }

    #[test]
    fn peer_beats_provider() {
        let a = route_with_len(3);
        let b = route_with_len(3);
        let best = select_best(vec![
            cand(1, Relationship::Provider, &a),
            cand(2, Relationship::Peer, &b),
        ])
        .unwrap();
        assert_eq!(best.neighbor, AsId(2));
    }
}
