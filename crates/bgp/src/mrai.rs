//! The Minimum Route Advertisement Interval (RFC 4271 §9.2.1.1).
//!
//! MRAI rate-limits *announcements* per (peer, prefix): after sending one,
//! a router must wait out the interval before sending the next; updates
//! arriving in between are coalesced, with the newest replacing older
//! pending state. Withdrawals are sent immediately (the common
//! implementation choice — "WRATE" disabled), which is why MRAI's effect
//! on the beacon signal is a bounded delay of at most the interval, a
//! pattern the paper's §4.1 explicitly distinguishes from the RFD
//! signature (minutes-long suppression).
//!
//! [`MraiGate`] is a pure state machine: the router submits outbound
//! updates and acts on the returned verdicts; the network layer schedules
//! the expiry timers the gate requests.

use std::collections::BTreeMap;

use netsim::{SimDuration, SimTime};

use crate::message::{BgpAction, BgpUpdate};
use crate::prefix::Prefix;

/// Result of submitting an update to the gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MraiVerdict {
    /// Send the update on the wire now.
    SendNow(BgpUpdate),
    /// The update was queued; arm a timer for `at` (unless one for this
    /// prefix is already armed, which the gate tracks — `arm` is false).
    Deferred {
        /// When the gate reopens for this prefix.
        at: SimTime,
        /// True if the caller must schedule an expiry event at `at`.
        arm: bool,
    },
}

#[derive(Debug, Clone, Default)]
struct Slot {
    /// Earliest time the next announcement may be sent.
    open_at: SimTime,
    /// Latest coalesced update waiting for the gate to open.
    pending: Option<BgpUpdate>,
    /// Whether an expiry event is already scheduled.
    armed: bool,
}

/// Per-neighbor MRAI state over all prefixes.
#[derive(Debug, Clone, Default)]
pub struct MraiGate {
    interval: Option<SimDuration>,
    slots: BTreeMap<Prefix, Slot>,
}

impl MraiGate {
    /// A gate with the given interval; `None` disables MRAI entirely.
    pub fn new(interval: Option<SimDuration>) -> Self {
        MraiGate {
            interval,
            slots: BTreeMap::new(),
        }
    }

    /// Submit an outbound update; returns what to do with it.
    pub fn submit(&mut self, update: BgpUpdate, now: SimTime) -> MraiVerdict {
        let Some(interval) = self.interval else {
            return MraiVerdict::SendNow(update);
        };
        let slot = self.slots.entry(update.prefix).or_default();

        match update.action {
            // Withdrawals bypass the gate and cancel any pending
            // announcement (it would be stale).
            BgpAction::Withdraw => {
                slot.pending = None;
                MraiVerdict::SendNow(update)
            }
            BgpAction::Announce { .. } => {
                if now >= slot.open_at {
                    slot.open_at = now + interval;
                    slot.pending = None;
                    MraiVerdict::SendNow(update)
                } else {
                    slot.pending = Some(update);
                    let at = slot.open_at;
                    let arm = !slot.armed;
                    slot.armed = true;
                    MraiVerdict::Deferred { at, arm }
                }
            }
        }
    }

    /// An expiry timer fired for `prefix`. Returns the coalesced update to
    /// send, if any survived (a withdrawal may have cancelled it).
    pub fn expire(&mut self, prefix: Prefix, now: SimTime) -> Option<BgpUpdate> {
        let interval = self.interval?;
        let slot = self.slots.get_mut(&prefix)?;
        slot.armed = false;
        let update = slot.pending.take()?;
        slot.open_at = now + interval;
        Some(update)
    }

    /// The configured interval, if enabled.
    pub fn interval(&self) -> Option<SimDuration> {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::AsId;
    use crate::message::AsPath;

    fn pfx() -> Prefix {
        "10.0.0.0/24".parse().unwrap()
    }

    fn ann(tag: u32) -> BgpUpdate {
        BgpUpdate::announce(pfx(), AsPath::from_slice(&[AsId(tag)]), None)
    }

    #[test]
    fn disabled_gate_passes_everything() {
        let mut g = MraiGate::new(None);
        for t in 0..5 {
            let v = g.submit(ann(t), SimTime::from_secs(t as u64));
            assert!(matches!(v, MraiVerdict::SendNow(_)));
        }
    }

    #[test]
    fn first_announcement_sends_then_defers() {
        let mut g = MraiGate::new(Some(SimDuration::from_secs(30)));
        assert!(matches!(
            g.submit(ann(1), SimTime::ZERO),
            MraiVerdict::SendNow(_)
        ));
        match g.submit(ann(2), SimTime::from_secs(10)) {
            MraiVerdict::Deferred { at, arm } => {
                assert_eq!(at, SimTime::from_secs(30));
                assert!(arm);
            }
            other => panic!("expected deferral, got {other:?}"),
        }
        // A third submit coalesces without re-arming.
        match g.submit(ann(3), SimTime::from_secs(20)) {
            MraiVerdict::Deferred { arm, .. } => assert!(!arm),
            other => panic!("expected deferral, got {other:?}"),
        }
        // Expiry sends the *latest* pending update.
        let sent = g.expire(pfx(), SimTime::from_secs(30)).unwrap();
        assert_eq!(sent, ann(3));
    }

    #[test]
    fn gate_reopens_after_interval() {
        let mut g = MraiGate::new(Some(SimDuration::from_secs(30)));
        g.submit(ann(1), SimTime::ZERO);
        assert!(matches!(
            g.submit(ann(2), SimTime::from_secs(30)),
            MraiVerdict::SendNow(_)
        ));
    }

    #[test]
    fn withdrawal_bypasses_and_cancels_pending() {
        let mut g = MraiGate::new(Some(SimDuration::from_secs(30)));
        g.submit(ann(1), SimTime::ZERO);
        g.submit(ann(2), SimTime::from_secs(5));
        let v = g.submit(BgpUpdate::withdraw(pfx()), SimTime::from_secs(6));
        assert!(matches!(v, MraiVerdict::SendNow(_)));
        // The expiry finds nothing to send.
        assert_eq!(g.expire(pfx(), SimTime::from_secs(30)), None);
    }

    #[test]
    fn expiry_restarts_window() {
        let mut g = MraiGate::new(Some(SimDuration::from_secs(30)));
        g.submit(ann(1), SimTime::ZERO);
        g.submit(ann(2), SimTime::from_secs(10));
        g.expire(pfx(), SimTime::from_secs(30)).unwrap();
        // Window restarted at expiry: an announcement at t=40 defers again.
        match g.submit(ann(3), SimTime::from_secs(40)) {
            MraiVerdict::Deferred { at, .. } => assert_eq!(at, SimTime::from_secs(60)),
            other => panic!("expected deferral, got {other:?}"),
        }
    }

    #[test]
    fn prefixes_are_independent() {
        let mut g = MraiGate::new(Some(SimDuration::from_secs(30)));
        let other: Prefix = "10.0.1.0/24".parse().unwrap();
        g.submit(ann(1), SimTime::ZERO);
        let v = g.submit(
            BgpUpdate::announce(other, AsPath::empty(), None),
            SimTime::from_secs(1),
        );
        assert!(
            matches!(v, MraiVerdict::SendNow(_)),
            "different prefix must not be gated"
        );
    }

    #[test]
    fn expire_without_pending_is_noop() {
        let mut g = MraiGate::new(Some(SimDuration::from_secs(30)));
        assert_eq!(g.expire(pfx(), SimTime::from_secs(5)), None);
    }
}
