//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The companion `serde` shim crate blanket-implements its marker traits
//! for every type, so the derives have nothing to generate — they exist
//! only so `#[derive(Serialize, Deserialize)]` attributes keep compiling
//! in this offline build. Swapping the shim for real serde requires no
//! source changes outside the two shim crates.

use proc_macro::TokenStream;

/// Accepted and ignored; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepted and ignored; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
