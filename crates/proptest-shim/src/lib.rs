//! Offline mini-`proptest`.
//!
//! The build container cannot reach crates.io, so the real proptest is
//! unavailable. This crate reimplements the (small) subset of its API the
//! workspace tests use — `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! range and `any::<T>()` strategies, tuples, and
//! `proptest::collection::vec` — on top of a deterministic splitmix64
//! generator. Semantics kept from the original:
//!
//! * each `#[test]` fn inside `proptest!` runs `ProptestConfig::cases`
//!   generated cases;
//! * `prop_assert*` failures abort the case with a message (no panic
//!   unwinding mid-case) and fail the test with the case number and seed;
//! * generation is fully deterministic per (test name, case index), so a
//!   failure reproduces without any persistence file.
//!
//! Shrinking is intentionally omitted: failing inputs are printed via
//! `Debug` instead. Swapping back to real proptest requires no changes in
//! test code for the constructs above.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A failed property-test case: the message carried by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result type property-test bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic value source handed to strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Seed a generator; identical seeds give identical value streams.
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is irrelevant for test-case generation.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator; the shim's analogue of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;
    /// Produce one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + gen.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + gen.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, gen: &mut Gen) -> f64 {
        self.start + (self.end - self.start) * gen.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(gen),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Draw an arbitrary value.
    fn arbitrary(gen: &mut Gen) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> bool {
        gen.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(gen: &mut Gen) -> $t {
                gen.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Gen, Strategy};
    use std::ops::Range;

    /// Length specification accepted by [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `elem` values.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + gen.below(span) as usize;
            (0..len).map(|_| self.elem.generate(gen)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` test file expects.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// FNV-1a hash of the test name: the per-test base seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "prop_assert_eq failed: {:?} != {:?} ({} vs {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "prop_assert_ne failed: both {:?} ({} vs {})",
            l,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Declare property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expand each `fn name(arg in strategy, …) { … }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::seed_from_name(stringify!($name));
            for case in 0..config.cases {
                let mut gen =
                    $crate::Gen::new(base ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut gen);)+
                // Render inputs before the body runs: the body may move
                // the generated values.
                let inputs =
                    format!(concat!($("\n  ", stringify!($arg), " = {:?}"),+), $(&$arg),+);
                let result: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "property {} failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e.0,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}
