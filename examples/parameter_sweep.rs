//! Which beacon update intervals trigger which RFD configurations?
//!
//! Sweeps flap intervals against the Appendix-B parameter sets plus the
//! stricter custom thresholds some operators configure, using the
//! analytic steady-state penalty of the RFC 2439 state machine — the
//! reasoning behind the paper's choice of 1/2/3 and 5/10/15-minute
//! campaigns, reproduced as a table.
//!
//! Run with: `cargo run --release --example parameter_sweep`

use bgpsim::{RfdParams, VendorProfile};
use netsim::SimDuration;

fn main() {
    let profiles: Vec<(String, RfdParams)> = vec![
        ("cisco".into(), VendorProfile::Cisco.params()),
        ("juniper".into(), VendorProfile::Juniper.params()),
        ("rfc7454 (6000)".into(), VendorProfile::Rfc7454.params()),
        (
            "custom (8000)".into(),
            VendorProfile::Rfc7454
                .params()
                .with_suppress_threshold(8000.0),
        ),
        (
            "custom (10000)".into(),
            VendorProfile::Rfc7454
                .params()
                .with_suppress_threshold(10000.0),
        ),
    ];
    let intervals: Vec<u64> = vec![1, 2, 3, 5, 8, 9, 10, 15];

    print!("{:<16}", "profile");
    for i in &intervals {
        print!("{:>7}", format!("{i}m"));
    }
    println!();
    for (name, params) in &profiles {
        print!("{name:<16}");
        for &mins in &intervals {
            let interval = SimDuration::from_mins(mins);
            let steady = params.steady_state_penalty(interval);
            let mark = if params.triggers_at(interval) {
                format!("{:.0}✓", steady)
            } else {
                "–".to_string()
            };
            print!("{mark:>7}");
        }
        println!();
    }
    println!("\n(cell = steady-state penalty when it exceeds the suppress threshold)");
    println!("paper: Cisco damps flaps ≤ ~8 min, Juniper ≤ ~9 min, recommended ≤ ~2 min");

    // Release times from the ceiling: the Fig. 13 plateau values.
    println!("\nmax-suppress-time → release delay after a saturated 1-minute burst:");
    for mins in [10u64, 30, 60] {
        let p = VendorProfile::Cisco
            .params()
            .with_max_suppress(SimDuration::from_mins(mins));
        let steady = p.steady_state_penalty(SimDuration::from_mins(1));
        println!(
            "  max-suppress {mins:>2} min → ceiling {:>6.0}, release after {:>5.1} min",
            p.penalty_ceiling(),
            p.time_to_reuse(steady).as_mins_f64()
        );
    }
}
