//! The AS-701 case: pinpointing an *inconsistently* damping AS.
//!
//! Reproduces §5.1's running example: an AS that damps every neighbor
//! except one. Its marginal posterior is dragged towards zero by the many
//! clean paths through the spared neighbor — yet the damped paths need an
//! explanation, and the Eq.-8 pass finds it by asking, per unexplained
//! path, which AS the joint posterior most often blames.
//!
//! The topology mirrors the structural features that make the real case
//! identifiable: AS 701 feeds the route collectors directly (big transits
//! peer with collector projects), each damped neighbor also has a clean
//! second provider (so it is independently exonerated), and the spared
//! neighbor AS 2497 carries the majority of 701's paths.
//!
//! Run with: `cargo run --release --example inconsistent_damping`

use beacon::BeaconSchedule;
use because::{Analysis, AnalysisConfig, NodeId, PathData, PathObservation};
use bgpsim::{AsId, Network, NetworkConfig, Relationship, SessionPolicy, VendorProfile};
use netsim::{SimDuration, SimTime};
use signature::{label_dump, LabelingConfig};

fn schedule(site: u32, prefix: &str) -> BeaconSchedule {
    BeaconSchedule::standard(
        prefix.parse().unwrap(),
        AsId(site),
        SimDuration::from_mins(1),
        SimDuration::from_hours(2),
        SimTime::ZERO,
        10,
    )
}

fn main() {
    let cisco = VendorProfile::Cisco.params();
    let cust = SessionPolicy::plain(Relationship::Customer);
    let prov = SessionPolicy::plain(Relationship::Provider);
    let mut net = Network::new(NetworkConfig {
        jitter: 0.2,
        seed: 2020,
        ..Default::default()
    });

    // AS 701 damps its sessions from 3356/1299/6453, spares 2497.
    let damped = [3356u32, 1299, 6453];
    for (i, &x) in damped.iter().enumerate() {
        net.connect(AsId(65000 + 10 * i as u32), AsId(x), prov, cust, None);
        net.connect(AsId(x), AsId(701), prov, cust.with_rfd(cisco), None);
        net.connect(AsId(902 + i as u32), AsId(x), prov, cust, None); // VP below x
        net.connect(AsId(x), AsId(10), prov, cust, None); // clean bypass provider
    }
    net.connect(AsId(930), AsId(10), prov, cust, None); // VP below the bypass
    net.connect(AsId(65002), AsId(2497), prov, cust, None); // spared neighbor's site
    net.connect(AsId(2497), AsId(701), prov, cust, None);
    net.connect(AsId(906), AsId(2497), prov, cust, None); // VP below 2497

    let vps: Vec<AsId> = [701u32, 902, 903, 904, 906, 930]
        .iter()
        .map(|&v| AsId(v))
        .collect();
    for &vp in &vps {
        net.attach_tap(vp);
    }

    let schedules = [
        schedule(65000, "10.0.0.0/24"),
        schedule(65010, "10.0.10.0/24"),
        schedule(65020, "10.0.20.0/24"),
        schedule(65002, "10.0.2.0/24"),
        schedule(65002, "10.0.3.0/24"),
        schedule(65002, "10.0.4.0/24"),
        schedule(65002, "10.0.5.0/24"),
    ];
    for s in &schedules {
        s.apply(&mut net);
    }
    println!("simulating 10 Burst–Break pairs over 7 beacon prefixes…");
    net.run_to_quiescence();

    let taps = net.take_tap_log();
    let set = collector::CollectorSet::single(&vps, collector::Project::RipeRis);
    let horizon = schedules.iter().map(|s| s.end()).max().unwrap();
    let dump = set.process(&taps, &collector::CollectorConfig::clean(), horizon);
    let mut labels = Vec::new();
    for s in &schedules {
        labels.extend(label_dump(&dump, s, &LabelingConfig::default()));
    }

    let damped_count = labels.iter().filter(|l| l.rfd).count();
    println!(
        "labeled paths: {} ({} show the RFD signature)",
        labels.len(),
        damped_count
    );

    let observations: Vec<PathObservation> = labels
        .iter()
        .flat_map(|l| {
            let nodes: Vec<NodeId> = l.path.asns().iter().map(|a| NodeId(a.0)).collect();
            std::iter::repeat_n(PathObservation::new(nodes.clone(), true), l.pairs_matching).chain(
                std::iter::repeat_n(
                    PathObservation::new(nodes, false),
                    l.pairs_total - l.pairs_matching,
                ),
            )
        })
        .collect();
    let sites: Vec<NodeId> = schedules.iter().map(|s| NodeId(s.site.0)).collect();
    let data = PathData::from_observations(&observations, &sites);
    let analysis = Analysis::run(&data, &AnalysisConfig::fast(2020));

    println!("\nper-AS verdicts:");
    for r in &analysis.reports {
        println!(
            "  AS{:<6} mean {:.2}  C{}{}",
            r.id,
            r.mean(),
            r.category.value(),
            if r.flagged_inconsistent {
                "  ← inconsistent damper found via Eq. 8"
            } else {
                ""
            }
        );
    }
    let r701 = analysis.report(NodeId(701)).expect("701 measured");
    println!(
        "\nAS701: marginal mean {:.2} (dragged down by the spared neighbor's clean paths),",
        r701.mean()
    );
    println!(
        "       final category C{} — flagged by the Eq.-8 pass with P = {:.2}",
        r701.category.value(),
        r701.pinpoint_prob.unwrap_or(f64::NAN)
    );
    assert!(r701.is_property(), "the pinpoint pass should flag AS701");
    assert!(r701.flagged_inconsistent);
}
