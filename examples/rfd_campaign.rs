//! A complete RFD measurement campaign, end to end.
//!
//! Mirrors the paper's study on a synthetic Internet: grow a topology,
//! plant an RFD deployment (vendor-default heavy, some inconsistent
//! dampers), run two-phase beacons from every site at a 1-minute update
//! interval, label paths by the RFD signature, run BeCAUSe and the three
//! heuristics, and score both against the deployment oracle.
//!
//! Run with: `cargo run --release --example rfd_campaign`

use because::AnalysisConfig;
use experiments::infer::infer_becauase_and_heuristics;
use experiments::metrics::evaluate_against_oracle;
use experiments::pipeline::{run_campaign, ExperimentConfig};
use heuristics::HeuristicConfig;
use netsim::SimDuration;

fn main() {
    let seed = 2020;
    let mut config = ExperimentConfig::single_interval(1, seed);
    // Keep the example snappy: a mid-sized topology, 3 Burst–Break pairs.
    config.topology.n_transit = 40;
    config.topology.n_stub = 100;
    config.topology.n_vantage_points = 25;
    config.cycles = 3;

    println!(
        "simulating campaign (1-minute beacons, {} cycles)…",
        config.cycles
    );
    let out = run_campaign(&config);
    println!(
        "  {} ASs, {} events, {} BGP updates delivered",
        out.topology.len(),
        out.events_processed,
        out.updates_delivered
    );
    println!(
        "  {} labeled paths, {:.1}% showing the RFD signature",
        out.labels.len(),
        100.0 * out.rfd_path_share()
    );
    println!(
        "  planted dampers: {} ({} inconsistent)",
        out.deployment.ground_truth().len(),
        out.deployment.inconsistent().len()
    );

    println!("\nrunning BeCAUSe (MH + HMC) and heuristics…");
    let inf = infer_becauase_and_heuristics(
        &out,
        &AnalysisConfig::fast(seed),
        &HeuristicConfig::default(),
    );

    let interval = SimDuration::from_mins(1);
    let because_eval = evaluate_against_oracle(&out, &inf.because_flagged(), interval);
    let heuristic_eval = evaluate_against_oracle(&out, &inf.heuristics_flagged(), interval);
    println!("  BeCAUSe:    {}", because_eval.summary());
    println!("  heuristics: {}", heuristic_eval.summary());

    let counts = inf.analysis.category_counts();
    println!(
        "\ncategories: C1={} C2={} C3={} C4={} C5={}  (C4+C5 = RFD-enabled)",
        counts[0], counts[1], counts[2], counts[3], counts[4]
    );
    for report in inf.analysis.reports.iter().filter(|r| r.is_property()) {
        println!(
            "  AS{:<6} mean {:.2} certainty {:.2}{}",
            report.id,
            report.mean(),
            report.certainty(),
            if report.flagged_inconsistent {
                "  (via Eq. 8)"
            } else {
                ""
            }
        );
    }
}
