//! BeCAUSe beyond RFD: the Route Origin Validation benchmark (§7).
//!
//! Builds the paper's ROV evaluation setup — real-ish AS paths of two
//! RPKI beacon prefixes, ~90 % labeled ROV by a planted enforcement set —
//! and runs the *unchanged* BeCAUSe pipeline on it. Demonstrates the
//! genericity claim: only the labels changed, not the algorithm.
//!
//! Run with: `cargo run --release --example rov_inference`

use because::AnalysisConfig;
use rov::{build, RovScenarioConfig};
use topology::TopologyConfig;

fn main() {
    let seed = 2020;
    let config = RovScenarioConfig {
        topology: TopologyConfig {
            n_transit: 40,
            n_stub: 100,
            ..TopologyConfig::default_with_seed(seed)
        },
        target_rov_share: 0.9,
        observe_everywhere: true,
        seed,
    };

    println!(
        "building ROV scenario ({} beacon prefixes)…",
        config.topology.n_beacon_sites
    );
    let scenario = build(&config);
    println!(
        "  {} paths collected, {:.1}% labeled ROV (paper: ~90%)",
        scenario.paths.len(),
        100.0 * scenario.rov_share()
    );
    println!(
        "  planted ROV set: {} ASs, of which {} are hidden behind another ROV AS",
        scenario.rov_ases.len(),
        scenario.hidden_rov_ases().len()
    );

    println!("\nrunning BeCAUSe…");
    let (analysis, pr) = scenario.evaluate(&AnalysisConfig::fast(seed));
    println!(
        "  precision {:.1}%  recall {:.1}%  (paper: 100% / 64%)",
        100.0 * pr.precision(),
        100.0 * pr.recall()
    );
    println!(
        "  true positives: {}, false positives: {}, misses: {}",
        pr.true_positives.len(),
        pr.false_positives.len(),
        pr.false_negatives.len()
    );

    // The paper's recall analysis: every miss should be a hidden AS.
    let hidden = scenario.hidden_rov_ases();
    let hidden_misses = pr
        .false_negatives
        .iter()
        .filter(|m| hidden.contains(m))
        .count();
    println!(
        "  misses explained by hiding: {}/{}",
        hidden_misses,
        pr.false_negatives.len()
    );
    println!("\ncategory counts: {:?}", analysis.category_counts());
}
