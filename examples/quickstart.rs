//! Quickstart: BeCAUSe on a hand-written tomography problem.
//!
//! Five ASs, seven observed paths. AS 20932 damps everything, AS 701
//! damps inconsistently, the rest are clean. We feed the labeled paths to
//! [`because::Analysis`] and read back categories, means and credible
//! intervals — no simulator required.
//!
//! Run with: `cargo run --release --example quickstart`

use because::{Analysis, AnalysisConfig, NodeId, PathData, PathObservation};

fn main() {
    // Paths are sets of ASs plus a boolean: did the path show the
    // property (here: the RFD signature)?
    let mut observations = Vec::new();
    let mut add = |asns: &[u32], shows: bool, copies: usize| {
        for _ in 0..copies {
            observations.push(PathObservation::new(
                asns.iter().map(|&a| NodeId(a)).collect(),
                shows,
            ));
        }
    };

    // AS 20932 damps: every path through it shows the signature.
    add(&[20932, 3356], true, 24);
    add(&[20932, 1299], true, 18);
    // AS 701 damps all neighbors except AS 2497: contradictory evidence
    // (damped paths through two well-exonerated partners, plus a pile of
    // clean paths through the spared neighbor).
    add(&[701, 3356], true, 18);
    add(&[701, 1299], true, 14);
    add(&[701, 2497], false, 30);
    // Clean reference paths.
    add(&[3356], false, 40);
    add(&[1299], false, 35);
    add(&[2497], false, 28);
    // AS 12874 is only ever seen behind the damper: no information.
    add(&[12874, 20932, 3356], true, 10);

    let data = PathData::from_observations(&observations, &[]);
    println!(
        "dataset: {} ASs, {} distinct paths, {} observations\n",
        data.num_nodes(),
        data.num_paths(),
        data.num_observations()
    );

    // Run both MCMC kernels, summarise, categorise, pinpoint.
    let analysis = Analysis::run(&data, &AnalysisConfig::fast(7));

    println!(
        "{:<8} {:>6} {:>14} {:>10}  category",
        "AS", "mean", "95% HPDI", "certainty"
    );
    for report in &analysis.reports {
        let m = report.hmc.or(report.mh).expect("a sampler ran");
        println!(
            "AS{:<6} {:>6.3} [{:>5.3}, {:>5.3}] {:>10.3}  C{}{}",
            report.id,
            report.mean(),
            m.hpdi_low,
            m.hpdi_high,
            report.certainty(),
            report.category.value(),
            if report.flagged_inconsistent {
                "  (inconsistent damper, Eq. 8)"
            } else {
                ""
            }
        );
    }

    println!("\nflagged as damping: {:?}", analysis.property_nodes());
    println!("max split-R̂ across chains: {:.3}", analysis.max_r_hat);
}
