//! Cross-crate integration tests: the full measurement + inference
//! pipeline under realistic and adversarial conditions.

use std::collections::BTreeSet;

use because::AnalysisConfig;
use because_repro::*;
use bgpsim::AsId;
use collector::CollectorConfig;
use experiments::infer::infer_becauase_and_heuristics;
use experiments::metrics::{detectable_universe, evaluate_against_oracle, observable_truth};
use experiments::pipeline::{run_campaign, ExperimentConfig};
use heuristics::HeuristicConfig;
use netsim::SimDuration;

fn small(seed: u64) -> ExperimentConfig {
    ExperimentConfig::small(1, seed)
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let a = run_campaign(&small(100));
    let b = run_campaign(&small(100));
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.dump.len(), b.dump.len());
    let ia =
        infer_becauase_and_heuristics(&a, &AnalysisConfig::fast(100), &HeuristicConfig::default());
    let ib =
        infer_becauase_and_heuristics(&b, &AnalysisConfig::fast(100), &HeuristicConfig::default());
    assert_eq!(ia.because_flagged(), ib.because_flagged());
    assert_eq!(ia.heuristics_flagged(), ib.heuristics_flagged());
}

#[test]
fn because_keeps_perfect_precision_across_seeds() {
    // The paper's headline property: BeCAUSe does not false-positive.
    // Over several seeds, every flagged AS must be a genuine damper.
    let mut total_flagged = 0;
    for seed in [101u64, 102, 103] {
        let out = run_campaign(&small(seed));
        let inf = infer_becauase_and_heuristics(
            &out,
            &AnalysisConfig::fast(seed),
            &HeuristicConfig::default(),
        );
        let truth = out.deployment.ground_truth();
        for flagged in inf.because_flagged() {
            total_flagged += 1;
            assert!(
                truth.contains(&flagged),
                "seed {seed}: AS{} flagged but does not damp",
                flagged.0
            );
        }
    }
    assert!(total_flagged > 0, "no damper was ever flagged across seeds");
}

#[test]
fn labels_survive_aggregator_corruption_and_resets() {
    // The paper's noise: ~1 % corrupted aggregator fields and occasional
    // session resets. The 90 % rule plus the validity filter must keep
    // labeling usable.
    let mut clean_cfg = small(104);
    clean_cfg.collector = CollectorConfig::clean();
    let mut noisy_cfg = small(104);
    noisy_cfg.collector = CollectorConfig {
        aggregator_corruption: 0.01,
        session_reset_rate: 0.2,
        session_reset_duration: SimDuration::from_mins(30),
        seed: 104,
    };
    noisy_cfg.cycles = 6; // more pairs → the 90 % rule has room to forgive

    let clean = run_campaign(&clean_cfg);
    let noisy = run_campaign(&noisy_cfg);
    assert!(!noisy.labels.is_empty());
    assert!((noisy.dump.invalid_share() - 0.01).abs() < 0.01);

    // RFD paths found in the clean run should still mostly be found.
    let clean_rfd: BTreeSet<String> = clean
        .labels
        .iter()
        .filter(|l| l.rfd)
        .map(|l| l.path.to_string())
        .collect();
    let noisy_rfd: BTreeSet<String> = noisy
        .labels
        .iter()
        .filter(|l| l.rfd)
        .map(|l| l.path.to_string())
        .collect();
    if !clean_rfd.is_empty() {
        let kept = clean_rfd.intersection(&noisy_rfd).count();
        assert!(
            kept * 3 >= clean_rfd.len() * 2,
            "noise destroyed labeling: kept {kept}/{}",
            clean_rfd.len()
        );
    }
}

#[test]
fn mrai_everywhere_never_fakes_rfd() {
    // §4.1: MRAI delays updates by at most its interval; the signature
    // must never misread it as damping. Deploy MRAI on every session and
    // *no* RFD at all.
    let mut cfg = small(105);
    cfg.deployment.rfd_share = 0.0;
    cfg.deployment.mrai_share = 1.0;
    let out = run_campaign(&cfg);
    assert!(!out.labels.is_empty());
    for l in &out.labels {
        assert!(
            !l.rfd,
            "MRAI-only network produced an RFD label on {}",
            l.path
        );
    }
}

#[test]
fn no_deployment_means_no_rfd_labels_and_no_flags() {
    let mut cfg = small(106);
    cfg.deployment.rfd_share = 0.0;
    let out = run_campaign(&cfg);
    assert!(out.labels.iter().all(|l| !l.rfd));
    let inf = infer_becauase_and_heuristics(
        &out,
        &AnalysisConfig::fast(106),
        &HeuristicConfig::default(),
    );
    assert!(
        inf.because_flagged().is_empty(),
        "{:?}",
        inf.because_flagged()
    );
}

#[test]
fn beacons_visible_at_nearly_all_vantage_points() {
    // §4.3 validation: beacon prefixes visible at ≥ 99 % of full-feed
    // peers. In the simulator with valley-free reachability this must be
    // 100 % of registered VPs.
    let cfg = small(107);
    let out = run_campaign(&cfg);
    let vps: BTreeSet<AsId> = out.topology.vantage_points.iter().copied().collect();
    let seen: BTreeSet<AsId> = out.dump.records().iter().map(|r| r.vantage).collect();
    assert_eq!(seen.len(), vps.len(), "some VP never saw a beacon");
}

#[test]
fn oracle_evaluation_shapes_hold() {
    let out = run_campaign(&small(108));
    let inf = infer_becauase_and_heuristics(
        &out,
        &AnalysisConfig::fast(108),
        &HeuristicConfig::default(),
    );
    let interval = SimDuration::from_mins(1);
    let b = evaluate_against_oracle(&out, &inf.because_flagged(), interval);
    let h = evaluate_against_oracle(&out, &inf.heuristics_flagged(), interval);
    // The paper's Table 4 shape: BeCAUSe precision ≥ heuristics precision.
    assert!(
        b.pr.precision() >= h.pr.precision() - 1e-9,
        "BeCAUSe {} vs heuristics {}",
        b.pr.precision(),
        h.pr.precision()
    );
    // Universe sanity.
    let universe = detectable_universe(&out);
    let truth = observable_truth(&out, interval, &universe);
    assert!(truth.len() <= out.deployment.ground_truth().len());
}

#[test]
fn anchor_prefixes_are_never_labeled() {
    // Anchors flap every 2 h — far too slow for any RFD config — and are
    // not part of the beacon schedules, so no labels may reference them.
    let out = run_campaign(&small(109));
    let anchors: BTreeSet<_> = out.campaign.sites.iter().map(|s| s.anchor.prefix).collect();
    for l in &out.labels {
        assert!(!anchors.contains(&l.prefix));
    }
}

#[test]
fn rov_and_rfd_share_the_same_inference_code() {
    // Genericity check (§7): the same Analysis configuration classifies
    // both problems without modification.
    let rov_cfg = rov::RovScenarioConfig {
        topology: topology::TopologyConfig::tiny(110),
        ..Default::default()
    };
    let scenario = rov::build(&rov_cfg);
    let (analysis, pr) = scenario.evaluate(&AnalysisConfig::fast(110));
    assert!(pr.precision() >= 0.8, "ROV precision {}", pr.precision());
    assert_eq!(
        analysis.reports.len(),
        scenario.path_data().num_nodes(),
        "one report per measured AS"
    );
}
