//! Property-based tests over the core data structures and invariants,
//! spanning crates (hence integration-level).

use because::likelihood::{IncrementalLikelihood, LogLikelihood, P_EPS};
use because::summary::Marginal;
use because::{NodeId, PathData, PathObservation};
use bgpsim::rfd::{FlapKind, RfdState};
use bgpsim::{AsId, AsPath, Prefix, VendorProfile};
use netsim::{EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// RFD state machine
// ---------------------------------------------------------------------

fn flap_kind(i: u8) -> FlapKind {
    match i % 4 {
        0 => FlapKind::Withdrawal,
        1 => FlapKind::Readvertisement,
        2 => FlapKind::AttributeChange,
        _ => FlapKind::Duplicate,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The penalty never exceeds the RFC 2439 ceiling, and a suppressed
    /// route's release time never lies more than max-suppress-time past
    /// its last update.
    #[test]
    fn rfd_penalty_bounded_and_release_bounded(
        kinds in proptest::collection::vec(0u8..4, 1..200),
        gaps in proptest::collection::vec(1u64..600, 1..200),
        profile in 0u8..3,
    ) {
        let params = match profile {
            0 => VendorProfile::Cisco.params(),
            1 => VendorProfile::Juniper.params(),
            _ => VendorProfile::Rfc7454.params(),
        };
        let mut state = RfdState::new();
        let mut now = SimTime::ZERO;
        for (k, g) in kinds.iter().zip(gaps.iter().cycle()) {
            state.record(flap_kind(*k), now, &params);
            prop_assert!(state.penalty_at(now, &params) <= params.penalty_ceiling() + 1e-6);
            if state.is_suppressed() {
                let release = state.release_at(&params).expect("suppressed has release");
                prop_assert!(
                    release.saturating_since(now) <= params.max_suppress_time + SimDuration::from_secs(1),
                    "release {release} too far past {now}"
                );
            } else {
                prop_assert!(state.release_at(&params).is_none());
            }
            now += SimDuration::from_secs(*g);
        }
    }

    /// Once quiet, a suppressed route is always released by the time the
    /// reuse deadline passes.
    #[test]
    fn rfd_release_deadline_is_honest(
        kinds in proptest::collection::vec(0u8..2, 5..100),
    ) {
        let params = VendorProfile::Juniper.params();
        let mut state = RfdState::new();
        let mut now = SimTime::ZERO;
        for k in &kinds {
            state.record(flap_kind(*k), now, &params);
            now += SimDuration::from_secs(45);
        }
        if state.is_suppressed() {
            let release = state.release_at(&params).unwrap();
            prop_assert!(state.tick(release, &params), "tick at deadline must release");
            prop_assert!(!state.is_suppressed());
        }
    }

    // -----------------------------------------------------------------
    // Event queue
    // -----------------------------------------------------------------

    /// Pops are sorted by time, FIFO within equal timestamps.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..10_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_millis(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_millis(t));
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
        }
    }

    // -----------------------------------------------------------------
    // AS paths and prefixes
    // -----------------------------------------------------------------

    /// Deduplication is idempotent and never lengthens a path; loop
    /// detection is invariant under prepending.
    #[test]
    fn as_path_cleaning_properties(raw in proptest::collection::vec(1u32..50, 1..20), reps in 1usize..4) {
        let path: AsPath = raw.iter().map(|&i| AsId(i)).collect();
        let dedup = path.deduplicated();
        prop_assert_eq!(dedup.deduplicated(), dedup.clone());
        prop_assert!(dedup.len() <= path.len());
        let prepended = path.prepend(AsId(raw[0]), reps);
        prop_assert_eq!(prepended.has_loop(), path.has_loop());
        prop_assert_eq!(prepended.deduplicated(), dedup);
    }

    /// Prefix display/parse round-trips.
    #[test]
    fn prefix_roundtrip(addr in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(addr, len);
        let reparsed: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(p, reparsed);
        prop_assert!(p.contains(p));
    }

    // -----------------------------------------------------------------
    // Likelihood
    // -----------------------------------------------------------------

    /// The incremental evaluator tracks the full evaluator over random
    /// single-coordinate moves, and both stay finite everywhere.
    #[test]
    fn incremental_likelihood_consistent(
        paths in proptest::collection::vec(
            (proptest::collection::vec(1u32..12, 1..5), any::<bool>()),
            1..25
        ),
        moves in proptest::collection::vec((0usize..12, 0.0f64..1.0), 1..40),
    ) {
        let observations: Vec<PathObservation> = paths
            .iter()
            .map(|(ids, label)| PathObservation::new(
                ids.iter().map(|&i| NodeId(i)).collect(), *label))
            .collect();
        let data = PathData::from_observations(&observations, &[]);
        if data.num_nodes() == 0 {
            return Ok(());
        }
        let ll = LogLikelihood::new(&data);
        let mut p = vec![0.5; data.num_nodes()];
        let mut inc = IncrementalLikelihood::new(&data, &p);
        for (idx, value) in moves {
            let i = idx % data.num_nodes();
            let delta = inc.delta(i, value);
            prop_assert!(delta.is_finite());
            inc.commit(i, value, delta);
            p[i] = value;
            let full = ll.eval(&p);
            prop_assert!(full.is_finite());
            prop_assert!((inc.total() - full).abs() < 1e-6,
                "incremental {} vs full {}", inc.total(), full);
        }
    }

    /// Long commit sequences hugging the `P_EPS` clamp boundaries — the
    /// regime where commit-time rounding drift used to break the
    /// `path_sum ≤ 0` invariant — keep the incremental cache in agreement
    /// with the full evaluator, NaN-free.
    #[test]
    fn incremental_consistent_at_clamp_boundaries(
        paths in proptest::collection::vec(
            (proptest::collection::vec(1u32..8, 1..4), any::<bool>()),
            1..15
        ),
        moves in proptest::collection::vec((0usize..8, 0u8..7), 20..200),
    ) {
        let observations: Vec<PathObservation> = paths
            .iter()
            .map(|(ids, label)| PathObservation::new(
                ids.iter().map(|&i| NodeId(i)).collect(), *label))
            .collect();
        let data = PathData::from_observations(&observations, &[]);
        if data.num_nodes() == 0 {
            return Ok(());
        }
        let ll = LogLikelihood::new(&data);
        let mut p = vec![0.5; data.num_nodes()];
        let mut inc = IncrementalLikelihood::new(&data, &p);
        for (idx, sel) in moves {
            let i = idx % data.num_nodes();
            // Boundary-biased move set: the clamp values themselves, the
            // raw 0/1 extremes, and near-boundary neighbours.
            let value = match sel {
                0 => P_EPS,
                1 => 1.0 - P_EPS,
                2 => 0.0,
                3 => 1.0,
                4 => 2.0 * P_EPS,
                5 => 1.0 - 2.0 * P_EPS,
                _ => 0.5,
            };
            let delta = inc.delta(i, value);
            prop_assert!(!delta.is_nan(), "NaN delta at i={i} value={value}");
            inc.commit(i, value, delta);
            p[i] = value;
        }
        let full = ll.eval(&p);
        prop_assert!(full.is_finite());
        prop_assert!(!inc.total().is_nan());
        prop_assert!(
            (inc.total() - full).abs() < 1e-6 * full.abs().max(1.0),
            "after boundary walk: incremental {} vs full {}", inc.total(), full
        );
    }

    /// `eval` and `grad` stay finite when every coordinate sits at a raw
    /// extreme (0 or 1) or at a clamp boundary.
    #[test]
    fn likelihood_finite_for_all_extreme_inputs(
        paths in proptest::collection::vec(
            (proptest::collection::vec(1u32..8, 1..4), any::<bool>()),
            1..15
        ),
        selectors in proptest::collection::vec(0u8..4, 8),
    ) {
        let observations: Vec<PathObservation> = paths
            .iter()
            .map(|(ids, label)| PathObservation::new(
                ids.iter().map(|&i| NodeId(i)).collect(), *label))
            .collect();
        let data = PathData::from_observations(&observations, &[]);
        if data.num_nodes() == 0 {
            return Ok(());
        }
        let p: Vec<f64> = (0..data.num_nodes())
            .map(|i| match selectors[i % selectors.len()] {
                0 => 0.0,
                1 => 1.0,
                2 => P_EPS,
                _ => 1.0 - P_EPS,
            })
            .collect();
        let ll = LogLikelihood::new(&data);
        let v = ll.eval(&p);
        prop_assert!(v.is_finite(), "eval({p:?}) = {v}");
        let mut g = vec![0.0; data.num_nodes()];
        ll.grad(&p, &mut g);
        for (i, gi) in g.iter().enumerate() {
            prop_assert!(gi.is_finite(), "grad[{i}] = {gi} at p={p:?}");
        }
    }

    // -----------------------------------------------------------------
    // Posterior summaries
    // -----------------------------------------------------------------

    /// The HPDI always covers at least the requested mass and lies within
    /// the sample range.
    #[test]
    fn hpdi_covers_mass(samples in proptest::collection::vec(0.0f64..1.0, 10..400)) {
        let m = Marginal::from_samples(&samples, 0.9);
        let inside = samples.iter()
            .filter(|&&x| x >= m.hpdi_low && x <= m.hpdi_high)
            .count() as f64 / samples.len() as f64;
        prop_assert!(inside >= 0.9 - 1e-9, "coverage {inside}");
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m.hpdi_low >= lo && m.hpdi_high <= hi);
        prop_assert!(m.mean >= lo && m.mean <= hi);
    }
}

// ---------------------------------------------------------------------
// Deterministic cross-crate properties (non-proptest)
// ---------------------------------------------------------------------

/// Weighted observations must produce exactly the same posterior input as
/// repeated observations (the dedup invariant the samplers rely on).
#[test]
fn weighting_equals_repetition() {
    let rep: Vec<PathObservation> = (0..7)
        .map(|_| PathObservation::new(vec![NodeId(1), NodeId(2)], true))
        .collect();
    let data = PathData::from_observations(&rep, &[]);
    assert_eq!(data.num_paths(), 1);
    assert_eq!(data.num_observations(), 7);
    let ll = LogLikelihood::new(&data);
    let single = PathData::from_observations(
        &[PathObservation::new(vec![NodeId(1), NodeId(2)], true)],
        &[],
    );
    let ll1 = LogLikelihood::new(&single);
    let p = [0.3, 0.4];
    assert!((ll.eval(&p) - 7.0 * ll1.eval(&p)).abs() < 1e-9);
}
