#!/usr/bin/env bash
# The full local gate: format, lints, tests, and bench compilation.
# CI (.github/workflows/ci.yml) runs the same sequence; run this before
# pushing to catch everything it would.
set -euo pipefail
cd "$(dirname "$0")/.."
root="$(pwd)"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test -p obs --no-default-features"
cargo test -p obs --no-default-features -q

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> artifact smoke test (--trace / --report-json on a tiny campaign)"
cargo build --release -p experiments --bins -q
artifacts="$(mktemp -d)"
trap 'rm -rf "$artifacts"' EXIT
REPRO_SCALE=tiny ./target/release/fig02_penalty_trace \
    --trace "$artifacts/fig02.trace.json" \
    --report-json "$artifacts/fig02.report.json" > /dev/null
python3 -m json.tool "$artifacts/fig02.trace.json" > /dev/null
python3 -m json.tool "$artifacts/fig02.report.json" > /dev/null
REPRO_SCALE=tiny ./target/release/fig06_link_similarity \
    --trace "$artifacts/fig06.trace.json" \
    --report-json "$artifacts/fig06.report.json" > /dev/null
python3 -m json.tool "$artifacts/fig06.trace.json" > /dev/null
python3 -m json.tool "$artifacts/fig06.report.json" > /dev/null

echo "==> fault-matrix smoke test (--faults on a tiny campaign)"
REPRO_SCALE=tiny ./target/release/fig05_signature \
    --faults drill \
    --report-json "$artifacts/fig05.faults.report.json" > /dev/null
REPRO_SCALE=tiny ./target/release/fig09_marginals \
    --faults "outage=0.3,reset=0.2,loss=0.02,dup=0.02,reorder=0.05,clock-skew-secs=5,seed=7" \
    --report-json "$artifacts/fig09.faults.report.json" > /dev/null
python3 - "$artifacts/fig05.faults.report.json" "$artifacts/fig09.faults.report.json" <<'PY'
import json, sys
for path in sys.argv[1:]:
    report = json.load(open(path))
    sections = {s["name"]: {e["name"]: e.get("value") for e in s["entries"]}
                for s in report["sections"]}
    faults = sections.get("faults")
    assert faults is not None, f"{path}: no faults section"
    assert faults.get("total", 0) > 0, f"{path}: fault plan injected nothing"
PY

echo "==> resume-equivalence smoke test (kill at draw 150, resume, diff)"
REPRO_SCALE=tiny ./target/release/fig09_marginals > "$artifacts/fig09.ref.txt"
set +e
REPRO_SCALE=tiny REPRO_KILL_AFTER_DRAWS=150 ./target/release/fig09_marginals \
    --checkpoint "$artifacts/fig09.ckpt" > /dev/null 2>&1
kill_status=$?
set -e
if [ "$kill_status" -ne 86 ]; then
    echo "expected simulated kill to exit 86, got $kill_status" >&2
    exit 1
fi
REPRO_SCALE=tiny ./target/release/fig09_marginals \
    --resume "$artifacts/fig09.ckpt" > "$artifacts/fig09.resumed.txt"
diff "$artifacts/fig09.ref.txt" "$artifacts/fig09.resumed.txt"

echo "==> golden stdout (tiny, all 14 binaries byte-identical with flags off)"
mkdir -p "$artifacts/golden"
for bin in appendix_b_defaults fig02_penalty_trace fig05_signature \
    fig06_link_similarity fig07_project_overlap fig08_propagation \
    fig09_marginals fig10_burst_hist fig11_scatter fig12_interval_share \
    fig13_rdelta_cdf table2_categories table3_divergence \
    table4_precision_recall; do
    REPRO_SCALE=tiny "./target/release/$bin" > "$artifacts/golden/$bin.txt"
done
(cd "$artifacts/golden" && sha256sum --quiet -c "$root/tests/golden_stdout_tiny.sha256")

echo "==> serve/dash smoke test (fig09 with --serve + --dash, live scrape)"
: > "$artifacts/fig09.serve.err"
REPRO_SCALE=tiny REPRO_SERVE_LINGER_SECS=60 ./target/release/fig09_marginals \
    --serve 127.0.0.1:0 --dash "$artifacts/fig09.dash.html" \
    > /dev/null 2> "$artifacts/fig09.serve.err" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(grep -o 'http://[0-9.:]*' "$artifacts/fig09.serve.err" | head -1 || true)"
    [ -n "$addr" ] && break
    sleep 0.2
done
[ -n "$addr" ] || { echo "serve endpoint never announced an address" >&2; exit 1; }
code=""
for _ in $(seq 1 100); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$addr/healthz" || true)"
    [ "$code" = "200" ] && break
    sleep 0.2
done
[ "$code" = "200" ] || { echo "/healthz never returned 200 (got '$code')" >&2; exit 1; }
# Wait for the run itself to finish (the dashboard is written last,
# before the linger window), then scrape the final state.
for _ in $(seq 1 300); do
    [ -f "$artifacts/fig09.dash.html" ] && break
    sleep 0.2
done
[ -f "$artifacts/fig09.dash.html" ] || { echo "dashboard never written" >&2; exit 1; }
curl -s "$addr/metrics" > "$artifacts/fig09.metrics.txt"
curl -s "$addr/progress" > "$artifacts/fig09.progress.json"
curl -s "$addr/report" > "$artifacts/fig09.live-report.json"
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
python3 - "$artifacts/fig09.metrics.txt" "$artifacts/fig09.progress.json" \
    "$artifacts/fig09.live-report.json" "$artifacts/fig09.dash.html" <<'PY'
import json, re, sys
metrics_path, progress_path, report_path, dash_path = sys.argv[1:5]

# Prometheus text exposition 0.0.4: TYPE lines, then samples with finite
# or +/-Inf/NaN float values; histogram buckets must be cumulative.
name_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
seen, buckets = {}, {}
for line in open(metrics_path):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("#"):
        parts = line.split()
        assert parts[:2] == ["#", "TYPE"] and len(parts) == 4, f"bad meta: {line}"
        assert parts[3] in ("counter", "gauge", "histogram"), line
        continue
    m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$", line)
    assert m, f"bad sample line: {line}"
    name, labels, value = m.groups()
    assert name_re.match(name), name
    float(value)  # parses (inf/nan allowed by the format)
    seen[name] = float(value)
    if name.endswith("_bucket"):
        buckets.setdefault(name, []).append(float(value))
for counts in buckets.values():
    assert counts == sorted(counts), "histogram buckets not cumulative"
assert seen.get("repro_draws", 0) > 0, "no draws recorded at /metrics"
assert "repro_split_r_hat" in seen, "split_r_hat gauge missing"

progress = json.load(open(progress_path))
assert progress["chains"], "empty /progress table"
for chain in progress["chains"]:
    assert chain["phase"] == "done", f"chain not done at scrape: {chain}"
    assert chain["iteration"] == chain["total"], chain

report = json.load(open(report_path))
sections = {s["name"] for s in report["sections"]}
assert "because.diagnostics" in sections, sections
diag = next(s for s in report["sections"] if s["name"] == "because.diagnostics")
names = {e["name"] for e in diag["entries"]}
for want in ("max_r_hat", "max_rank_r_hat", "min_ess_bulk", "min_ess_tail"):
    assert want in names, f"{want} missing from live report"

html = open(dash_path).read()
assert html.startswith("<!DOCTYPE html>"), "not an HTML document"
for tag in ("html", "body", "svg", "table"):
    assert html.count(f"<{tag}") == html.count(f"</{tag}>"), f"unbalanced <{tag}>"
for section_id in ("summary", "diagnostics", "traces", "marginals", "report"):
    assert f'id="{section_id}"' in html, f"#{section_id} missing"
stripped = html.replace("http://www.w3.org/2000/svg", "")
assert "http://" not in stripped and "https://" not in stripped, "external asset"
print("serve/dash artifacts validated")
PY

echo "All checks passed."
