#!/usr/bin/env bash
# The full local gate: format, lints, tests, and bench compilation.
# CI (.github/workflows/ci.yml) runs the same sequence; run this before
# pushing to catch everything it would.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test -p obs --no-default-features"
cargo test -p obs --no-default-features -q

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "All checks passed."
