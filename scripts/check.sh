#!/usr/bin/env bash
# The full local gate: format, lints, tests, and bench compilation.
# CI (.github/workflows/ci.yml) runs the same sequence; run this before
# pushing to catch everything it would.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test -p obs --no-default-features"
cargo test -p obs --no-default-features -q

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> artifact smoke test (--trace / --report-json on a tiny campaign)"
cargo build --release -p experiments --bins -q
artifacts="$(mktemp -d)"
trap 'rm -rf "$artifacts"' EXIT
REPRO_SCALE=tiny ./target/release/fig02_penalty_trace \
    --trace "$artifacts/fig02.trace.json" \
    --report-json "$artifacts/fig02.report.json" > /dev/null
python3 -m json.tool "$artifacts/fig02.trace.json" > /dev/null
python3 -m json.tool "$artifacts/fig02.report.json" > /dev/null
REPRO_SCALE=tiny ./target/release/fig06_link_similarity \
    --trace "$artifacts/fig06.trace.json" \
    --report-json "$artifacts/fig06.report.json" > /dev/null
python3 -m json.tool "$artifacts/fig06.trace.json" > /dev/null
python3 -m json.tool "$artifacts/fig06.report.json" > /dev/null

echo "==> fault-matrix smoke test (--faults on a tiny campaign)"
REPRO_SCALE=tiny ./target/release/fig05_signature \
    --faults drill \
    --report-json "$artifacts/fig05.faults.report.json" > /dev/null
REPRO_SCALE=tiny ./target/release/fig09_marginals \
    --faults "outage=0.3,reset=0.2,loss=0.02,dup=0.02,reorder=0.05,clock-skew-secs=5,seed=7" \
    --report-json "$artifacts/fig09.faults.report.json" > /dev/null
python3 - "$artifacts/fig05.faults.report.json" "$artifacts/fig09.faults.report.json" <<'PY'
import json, sys
for path in sys.argv[1:]:
    report = json.load(open(path))
    sections = {s["name"]: {e["name"]: e.get("value") for e in s["entries"]}
                for s in report["sections"]}
    faults = sections.get("faults")
    assert faults is not None, f"{path}: no faults section"
    assert faults.get("total", 0) > 0, f"{path}: fault plan injected nothing"
PY

echo "==> resume-equivalence smoke test (kill at draw 150, resume, diff)"
REPRO_SCALE=tiny ./target/release/fig09_marginals > "$artifacts/fig09.ref.txt"
set +e
REPRO_SCALE=tiny REPRO_KILL_AFTER_DRAWS=150 ./target/release/fig09_marginals \
    --checkpoint "$artifacts/fig09.ckpt" > /dev/null 2>&1
kill_status=$?
set -e
if [ "$kill_status" -ne 86 ]; then
    echo "expected simulated kill to exit 86, got $kill_status" >&2
    exit 1
fi
REPRO_SCALE=tiny ./target/release/fig09_marginals \
    --resume "$artifacts/fig09.ckpt" > "$artifacts/fig09.resumed.txt"
diff "$artifacts/fig09.ref.txt" "$artifacts/fig09.resumed.txt"

echo "All checks passed."
