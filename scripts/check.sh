#!/usr/bin/env bash
# The full local gate: format, lints, tests, and bench compilation.
# CI (.github/workflows/ci.yml) runs the same sequence; run this before
# pushing to catch everything it would.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test -p obs --no-default-features"
cargo test -p obs --no-default-features -q

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> artifact smoke test (--trace / --report-json on a tiny campaign)"
cargo build --release -p experiments --bins -q
artifacts="$(mktemp -d)"
trap 'rm -rf "$artifacts"' EXIT
REPRO_SCALE=tiny ./target/release/fig02_penalty_trace \
    --trace "$artifacts/fig02.trace.json" \
    --report-json "$artifacts/fig02.report.json" > /dev/null
python3 -m json.tool "$artifacts/fig02.trace.json" > /dev/null
python3 -m json.tool "$artifacts/fig02.report.json" > /dev/null
REPRO_SCALE=tiny ./target/release/fig06_link_similarity \
    --trace "$artifacts/fig06.trace.json" \
    --report-json "$artifacts/fig06.report.json" > /dev/null
python3 -m json.tool "$artifacts/fig06.trace.json" > /dev/null
python3 -m json.tool "$artifacts/fig06.report.json" > /dev/null

echo "All checks passed."
