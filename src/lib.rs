//! Umbrella crate for the BeCAUSe reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See the individual crates for documentation:
//! [`because`] (the inference framework), [`bgpsim`] (BGP + RFD substrate),
//! [`topology`], [`beacon`], [`collector`], [`signature`], [`heuristics`],
//! [`rov`], and [`experiments`].

pub use beacon;
pub use because;
pub use bgpsim;
pub use collector;
pub use experiments;
pub use heuristics;
pub use netsim;
pub use rov;
pub use signature;
pub use topology;
